/**
 * @file
 * Synthetic-traffic harness over a single network: few-to-many reply
 * injection (the paper's Fig. 4 heat maps), uniform-random traffic,
 * and latency-throughput sweeps for the examples.
 */

#ifndef EQX_SIM_SYNTHETIC_HH
#define EQX_SIM_SYNTHETIC_HH

#include <map>
#include <vector>

#include "common/types.hh"
#include "noc/network.hh"

namespace eqx {

/** Traffic patterns supported by the synthetic runner. */
enum class TrafficPattern : std::uint8_t
{
    FewToMany,  ///< CBs inject replies to uniformly random PEs
    ManyToFew,  ///< PEs inject requests to uniformly random CBs
    Uniform,    ///< every node to every other node
};

/** Inputs of one synthetic run. */
struct SyntheticParams
{
    int width = 8;
    int height = 8;
    std::vector<Coord> cbs;        ///< sources/destinations of F2M/M2F
    TrafficPattern pattern = TrafficPattern::FewToMany;
    double injectionRate = 0.05;   ///< packets/cycle per source node
    int packetBits = 640;          ///< 5 flits at 128-bit links
    Cycle warmupCycles = 2000;
    Cycle measureCycles = 10000;
    Cycle drainCycles = 30000;
    std::uint64_t seed = 1;
    /** Optional EquiNox EIR deployment on this network. */
    std::map<NodeId, std::vector<NodeId>> eirGroups;
    NocParams noc;                 ///< width/height overwritten
};

/** Outputs: heat map, variance, latency, throughput. */
struct SyntheticResult
{
    std::vector<double> routerHeat;  ///< mean flit residence per router
    double heatVariance = 0;
    double avgTotalLatency = 0;      ///< ticks, measured packets
    double avgQueueLatency = 0;
    double avgNetLatency = 0;
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    double offeredLoad = 0;          ///< packets/cycle/source
    double throughput = 0;           ///< delivered packets/cycle (whole net)
};

/** Run the synthetic experiment. */
SyntheticResult runSynthetic(const SyntheticParams &params);

/** Render a heat map as an ASCII grid with one decimal per tile. */
std::string heatAscii(const std::vector<double> &heat, int width,
                      int height);

} // namespace eqx

#endif // EQX_SIM_SYNTHETIC_HH
