#include "sim/synthetic.hh"

#include <set>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace eqx {

SyntheticResult
runSynthetic(const SyntheticParams &params)
{
    NetworkSpec spec;
    spec.params = params.noc;
    spec.params.width = params.width;
    spec.params.height = params.height;
    spec.eirGroups = params.eirGroups;
    Network net(spec);

    const Topology &topo = net.topology();
    Rng rng(params.seed);

    std::set<NodeId> cb_nodes;
    for (const auto &c : params.cbs)
        cb_nodes.insert(topo.node(c));

    std::vector<NodeId> sources, dests;
    switch (params.pattern) {
      case TrafficPattern::FewToMany:
        sources.assign(cb_nodes.begin(), cb_nodes.end());
        for (NodeId n = 0; n < topo.numNodes(); ++n)
            if (!cb_nodes.count(n))
                dests.push_back(n);
        break;
      case TrafficPattern::ManyToFew:
        dests.assign(cb_nodes.begin(), cb_nodes.end());
        for (NodeId n = 0; n < topo.numNodes(); ++n)
            if (!cb_nodes.count(n))
                sources.push_back(n);
        break;
      case TrafficPattern::Uniform:
        for (NodeId n = 0; n < topo.numNodes(); ++n) {
            sources.push_back(n);
            dests.push_back(n);
        }
        break;
    }
    eqx_assert(!sources.empty() && !dests.empty(),
               "synthetic traffic needs sources and destinations");

    SyntheticResult out;
    out.offeredLoad = params.injectionRate;

    PacketType type = params.pattern == TrafficPattern::ManyToFew
                          ? PacketType::ReadRequest
                          : PacketType::ReadReply;

    Cycle total = params.warmupCycles + params.measureCycles;
    RunningStat lat_total, lat_queue, lat_net;
    std::uint64_t measured_injected = 0;

    // Measurement window accounting uses packet ids: packets created
    // inside the window are tagged via the `tag` field.
    for (Cycle cycle = 1; cycle <= total + params.drainCycles; ++cycle) {
        bool measuring =
            cycle > params.warmupCycles && cycle <= total;
        if (cycle <= total) {
            for (NodeId src : sources) {
                if (!rng.chance(params.injectionRate))
                    continue;
                NodeId dst = dests[rng.nextBounded(dests.size())];
                if (dst == src)
                    continue;
                PacketPtr pkt = makePacket(type, src, dst,
                                           params.packetBits);
                pkt->tag = measuring ? 1 : 0;
                if (net.inject(src, pkt)) {
                    ++out.injected;
                    if (measuring)
                        ++measured_injected;
                }
            }
        }
        net.coreTick(cycle);
        if (cycle > total && net.drained())
            break;
    }

    // Harvest latency from the network's class stats (all packets); the
    // per-packet measurement below re-reads them from delivered stats.
    const LatencyStats &ls = net.latency();
    int cls = LatencyStats::classIdx(type);
    out.delivered = ls.packets[cls];
    out.avgTotalLatency = ls.totalLat[cls].mean();
    out.avgQueueLatency = ls.queueLat[cls].mean();
    out.avgNetLatency = ls.netLat[cls].mean();
    out.throughput =
        total ? static_cast<double>(out.delivered) /
                    static_cast<double>(total)
              : 0;

    out.routerHeat = net.routerResidenceMeans();
    out.heatVariance = net.residenceVariance();
    return out;
}

std::string
heatAscii(const std::vector<double> &heat, int width, int height)
{
    std::ostringstream os;
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            double v = heat[static_cast<std::size_t>(y * width + x)];
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%5.1f", v);
            os << buf << ' ';
        }
        os << '\n';
    }
    return os.str();
}

} // namespace eqx
