/**
 * @file
 * Stable, canonical serialization of everything that determines one
 * simulation cell's result: the (post-tweak) SystemConfig and the
 * (post-scale) WorkloadProfile. The src/sweep content-addressed cache
 * hashes this serialization into the cell's digest, so two invariants
 * matter here:
 *
 *  - *Stability*: the canonical form is independent of field
 *    insertion order (pairs are sorted by key before rendering) and
 *    of platform formatting quirks (doubles render with
 *    to_chars(general, 17) — the C-locale %.17g bytes, immune to
 *    LC_NUMERIC — the round-trip-exact form).
 *  - *Completeness*: every knob that can change a RunResult must be
 *    serialized; a missed knob silently aliases distinct cells onto
 *    one cache entry. The size guard below trips when SystemConfig
 *    grows, and tests/sweep/test_digest.cc sweeps every field.
 *
 * Deliberately excluded: `cancel` (affects only whether a run fails,
 * and failed cells are never cached) and `verbose`-style
 * observability toggles that live outside SystemConfig.
 */

#ifndef EQX_SIM_CONFIG_SERIAL_HH
#define EQX_SIM_CONFIG_SERIAL_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/scheme.hh"
#include "workloads/profiles.hh"

namespace eqx {

/**
 * An accumulating key/value blob with a canonical (sorted) rendering.
 * Keys must be unique; values are rendered to strings on insertion.
 */
class KvBlob
{
  public:
    void add(const std::string &key, const std::string &v);
    void add(const std::string &key, const char *v);
    void add(const std::string &key, double v);
    void add(const std::string &key, std::uint64_t v);
    void add(const std::string &key, std::int64_t v);
    void add(const std::string &key, int v);
    void add(const std::string &key, bool v);

    const std::vector<std::pair<std::string, std::string>> &pairs() const
    {
        return kv_;
    }

    /**
     * The canonical form: pairs sorted by key, rendered one per line
     * as `key=value\n`. Two blobs with the same pairs added in any
     * order render identically.
     */
    std::string canonical() const;

  private:
    std::vector<std::pair<std::string, std::string>> kv_;
};

/**
 * Serialize every result-determining field of @p sc under "sc." keys.
 * A pinned `preDesign` is serialized by *content* (placement + EIR
 * groups), not by pointer, so a hand-pinned design and the equivalent
 * in-system design flow hash identically.
 */
void serializeSystemConfig(const SystemConfig &sc, KvBlob &out);

/** Serialize every field of @p wp under "wp." keys. */
void serializeWorkloadProfile(const WorkloadProfile &wp, KvBlob &out);

} // namespace eqx

#endif // EQX_SIM_CONFIG_SERIAL_HH
