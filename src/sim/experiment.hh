/**
 * @file
 * Experiment runner shared by the bench harness: runs scheme x
 * benchmark matrices with a cached EquiNox design, and formats the
 * normalized tables the paper's figures report.
 *
 * The matrix executes on the src/runner JobPool: every (scheme,
 * benchmark) cell is an independent simulation job, so `workers` > 1
 * runs cells concurrently. Results are bit-for-bit identical for any
 * worker count (see DESIGN.md "Parallel sweep engine") as long as
 * the wall-clock timeout is disabled.
 */

#ifndef EQX_SIM_EXPERIMENT_HH
#define EQX_SIM_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "runner/job_pool.hh"
#include "runner/jsonl.hh"
#include "schemes/scheme_registry.hh"
#include "sim/system.hh"

namespace eqx {

/** One (scheme, benchmark) cell of a result matrix. */
struct CellResult
{
    std::string scheme; ///< canonical SchemeRegistry name
    std::string benchmark;
    RunResult result;

    // Job-engine outcome for this cell. `failed` cells carry whatever
    // partial RunResult the final attempt produced; sweeps report
    // them instead of aborting. wallMs is observability only — it is
    // machine/load dependent and excluded from determinism claims.
    bool failed = false;
    int attempts = 1;
    double wallMs = 0;
    std::string error;

    /**
     * Canonical matrix index (workload-major, scheme-minor) over the
     * *unsharded* matrix. Stable across shard splits, so sharded
     * sweep journals can be merged back into single-process order.
     * Not part of the sweep JSONL record schema.
     */
    std::size_t index = 0;
    /** Served by the cell cache/journal instead of simulated. */
    bool fromCache = false;
};

/** Configuration of a full experiment matrix. */
struct ExperimentConfig
{
    int width = 8;
    int height = 8;
    int numCbs = 8;
    std::uint64_t seed = 1;
    /** SchemeRegistry keys (name or alias, any case) to sweep. The
     *  default is the paper's seven; registry-only variants like
     *  "EquiNox-XY" slot in by name. */
    std::vector<std::string> schemes = paperSchemeNames();
    std::vector<WorkloadProfile> workloads;
    /** Scale factor on instsPerPe (benches shrink runs for speed). */
    double instScale = 1.0;
    bool verbose = false;
    /** NoC stats reset at this core cycle (0 = measure from cycle 0). */
    Cycle warmupCycles = 0;
    /** Collect the per-router/per-NI snapshot into each RunResult and
     *  emit it ("m."-prefixed keys) in JSONL records. */
    bool collectMetrics = false;
    /** Fault injection applied to every cell (DESIGN.md §11). JSONL
     *  records of fault-armed runs grow the fault_* columns; a
     *  disabled config leaves the schema and results byte-identical
     *  to a fault-free build. */
    FaultConfig fault;
    /** Traffic model applied to every cell (DESIGN.md §16). The
     *  default keeps the legacy closed-loop synthetic path and a
     *  record schema byte-identical to pre-traffic builds; storm
     *  models grow the storm_* columns, coherence the coh_* ones. */
    TrafficConfig traffic;
    /** Applied to every per-run SystemConfig before construction.
     *  Must be thread-safe when workers != 1 (called concurrently). */
    std::function<void(SystemConfig &)> tweak;

    // ---- Parallel sweep engine (src/runner) ----
    /** Worker threads; 1 = serial, 0 = hardware concurrency. */
    int workers = 1;
    /** Per-attempt wall-clock timeout in seconds (0 = off). Enabling
     *  it trades the bit-determinism guarantee for robustness. */
    double jobTimeoutSec = 0;
    /** Retries after a non-completed attempt (timeout/maxCycles). */
    int jobRetries = 1;
    /** Emit a stderr progress ticker while the matrix runs. */
    bool progress = false;
    /** Stream one JSONL record per completed cell to this path. */
    std::string jsonlPath;
    /** Give each cell a private Rng stream derived from
     *  (seed, scheme, benchmark) instead of the shared base seed.
     *  Off by default: the paper's scheme comparison wants identical
     *  traces across schemes; design-space data generation wants
     *  statistically independent cells. */
    bool decorrelateSeeds = false;

    // ---- Sweep fabric hooks (src/sweep) ----
    // All three see the cell's identity fields (scheme, benchmark,
    // index) filled in; all must be thread-safe for workers != 1.
    /** When set, the matrix is restricted to cells this passes —
     *  the shard predicate. Skipped cells are absent from the
     *  returned vector and from JSONL output. */
    std::function<bool(const CellResult &)> cellFilter;
    /** Consulted in the pool path before a cell is simulated: fill
     *  the cell (result/failed/attempts/error) and return true to
     *  serve it from cache/journal without running. */
    std::function<bool(CellResult &)> cellLookup;
    /** Called (serialized) after every finished cell, cache-served or
     *  simulated; the cache/journal population point. */
    std::function<void(const CellResult &)> cellDone;
};

/**
 * One cell fully prepared for execution: the post-tweak SystemConfig
 * (seed already decorrelated when configured, EquiNox design pinned)
 * and the post-instScale workload. This is exactly what System will
 * simulate — and therefore exactly what the src/sweep digest hashes.
 */
struct PreparedCell
{
    SystemConfig sc;
    WorkloadProfile wp;
};

/** Runs the matrix; caches the EquiNox design across benchmarks. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(ExperimentConfig config);

    /** The (cached) EquiNox design used for every EquiNox run. */
    const EquiNoxDesign &equinoxDesign();

    /** Run one cell (optionally under a cancellation token). The
     *  scheme is any registry key — name or alias, any case. */
    RunResult runOne(const std::string &scheme,
                     const WorkloadProfile &profile,
                     const CancelToken *cancel = nullptr);

    /**
     * Resolve one cell to the exact (SystemConfig, WorkloadProfile)
     * pair runOne would simulate, without running it. Thread-safe
     * once the EquiNox design has been built (runMatrix prebuilds
     * it); the digest layer of src/sweep hashes this.
     */
    PreparedCell prepareCell(const std::string &scheme,
                             const WorkloadProfile &profile);

    /**
     * Run every (scheme, workload) pair through the job pool.
     * Cell order is always workload-major, scheme-minor, independent
     * of scheduling. Failed cells are reported in-place.
     */
    std::vector<CellResult> runMatrix();

    const ExperimentConfig &config() const { return cfg_; }

  private:
    SystemConfig makeSystemConfig(const SchemeModel &model) const;

    ExperimentConfig cfg_;
    EquiNoxDesign design_;
    bool designBuilt_ = false;
};

/** One cell as a flat JSON object (the sweep JSONL record schema). */
std::string cellJsonRecord(const CellResult &cell);

/** The same record as a JsonObject, for callers that splice extra
 *  fields around it (the src/sweep cache/journal records). */
JsonObject cellJsonObject(const CellResult &cell);

/**
 * Print a benchmark x scheme table of metric values normalized to
 * @p baseline, followed by a geometric-mean row (paper Fig. 9 style).
 */
void printNormalizedTable(
    const std::vector<CellResult> &cells,
    const std::vector<std::string> &schemes,
    const std::string &metric_name,
    const std::function<double(const RunResult &)> &metric,
    const std::string &baseline);

/** Geomean of a metric for one scheme across all benchmarks. */
double schemeGeomean(const std::vector<CellResult> &cells,
                     const std::string &scheme,
                     const std::function<double(const RunResult &)> &metric);

/**
 * Dump the raw result matrix as CSV (one row per cell, every RunResult
 * field), for external plotting. Fatal if the file cannot be written.
 */
void writeCellsCsv(const std::vector<CellResult> &cells,
                   const std::string &path);

} // namespace eqx

#endif // EQX_SIM_EXPERIMENT_HH
