/**
 * @file
 * Experiment runner shared by the bench harness: runs scheme x
 * benchmark matrices with a cached EquiNox design, and formats the
 * normalized tables the paper's figures report.
 */

#ifndef EQX_SIM_EXPERIMENT_HH
#define EQX_SIM_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/system.hh"

namespace eqx {

/** One (scheme, benchmark) cell of a result matrix. */
struct CellResult
{
    Scheme scheme;
    std::string benchmark;
    RunResult result;
};

/** Configuration of a full experiment matrix. */
struct ExperimentConfig
{
    int width = 8;
    int height = 8;
    int numCbs = 8;
    std::uint64_t seed = 1;
    std::vector<Scheme> schemes = allSchemes();
    std::vector<WorkloadProfile> workloads;
    /** Scale factor on instsPerPe (benches shrink runs for speed). */
    double instScale = 1.0;
    bool verbose = false;
    /** Applied to every per-run SystemConfig before construction. */
    std::function<void(SystemConfig &)> tweak;
};

/** Runs the matrix; caches the EquiNox design across benchmarks. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(ExperimentConfig config);

    /** The (cached) EquiNox design used for every EquiNox run. */
    const EquiNoxDesign &equinoxDesign();

    /** Run one cell. */
    RunResult runOne(Scheme scheme, const WorkloadProfile &profile);

    /** Run every (scheme, workload) pair. */
    std::vector<CellResult> runMatrix();

    const ExperimentConfig &config() const { return cfg_; }

  private:
    SystemConfig makeSystemConfig(Scheme scheme) const;

    ExperimentConfig cfg_;
    EquiNoxDesign design_;
    bool designBuilt_ = false;
};

/**
 * Print a benchmark x scheme table of metric values normalized to
 * @p baseline, followed by a geometric-mean row (paper Fig. 9 style).
 */
void printNormalizedTable(
    const std::vector<CellResult> &cells,
    const std::vector<Scheme> &schemes,
    const std::string &metric_name,
    const std::function<double(const RunResult &)> &metric,
    Scheme baseline);

/** Geomean of a metric for one scheme across all benchmarks. */
double schemeGeomean(const std::vector<CellResult> &cells, Scheme scheme,
                     const std::function<double(const RunResult &)> &metric);

/**
 * Dump the raw result matrix as CSV (one row per cell, every RunResult
 * field), for external plotting. Fatal if the file cannot be written.
 */
void writeCellsCsv(const std::vector<CellResult> &cells,
                   const std::string &path);

} // namespace eqx

#endif // EQX_SIM_EXPERIMENT_HH
