/**
 * @file
 * The full interposer-based throughput processor: PEs with L1s, the
 * NoC scheme under test, cache banks with their HBM stacks, and the
 * cycle loop that runs one benchmark to completion.
 */

#ifndef EQX_SIM_SYSTEM_HH
#define EQX_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/time_wheel.hh"
#include "common/types.hh"
#include "gpu/cache_bank.hh"
#include "gpu/endpoint.hh"
#include "gpu/pe.hh"
#include "noc/network.hh"
#include "power/power_model.hh"
#include "sim/scheme.hh"
#include "traffic/storm.hh"
#include "traffic/trace_io.hh"
#include "traffic/traffic_model.hh"
#include "workloads/profiles.hh"

namespace eqx {

class SchemeModel;

/** Aggregated outcome of one (scheme, benchmark) run. */
struct RunResult
{
    bool completed = false;  ///< drained before maxCycles
    Cycle cycles = 0;
    double execNs = 0;
    std::uint64_t totalInsts = 0;
    double ipc = 0;

    double energyPj = 0;
    EnergyBreakdown energy;
    double edp = 0;          ///< pJ * ns
    double areaMm2 = 0;

    // NoC latency decomposition (ns, per packet, averaged).
    double reqQueueNs = 0;
    double reqNetNs = 0;
    double repQueueNs = 0;
    double repNetNs = 0;
    std::uint64_t reqPackets = 0;
    std::uint64_t repPackets = 0;

    std::uint64_t requestBits = 0;
    std::uint64_t replyBits = 0;

    // Total-latency percentiles per class (ns), from the per-network
    // histograms; 0 when the class saw no packets.
    double reqP50Ns = 0, reqP95Ns = 0, reqP99Ns = 0;
    double repP50Ns = 0, repP95Ns = 0, repP99Ns = 0;

    /**
     * Heaviest injection point of the EquiNox reply network: max over
     * every CB NI injection buffer (local + EIRs) of packets injected.
     * The measured counterpart of the MCTS evaluator's maxLoad metric;
     * 0 for non-EquiNox schemes.
     */
    std::uint64_t maxEirLoadPackets = 0;

    // Fault/recovery aggregates over every network (DESIGN.md §11);
    // all zero unless SystemConfig::fault was enabled.
    bool faultArmed = false;
    bool degraded = false;    ///< fault detection masked >= 1 port
    std::uint64_t faultSeqPackets = 0;
    std::uint64_t faultDelivered = 0;
    std::uint64_t faultDuplicates = 0;
    std::uint64_t faultRetx = 0;
    std::uint64_t faultLost = 0;
    std::uint64_t faultWormsDropped = 0;
    std::uint64_t faultFlitsDropped = 0;
    std::uint64_t faultCreditsReconciled = 0;
    int faultMaskedPorts = 0;

    // Open-loop storm aggregates over every storm endpoint (traffic
    // model storm-*, DESIGN.md §16); all zero unless the run replaced
    // its PEs with rate-driven endpoints.
    bool stormArmed = false;
    std::uint64_t stormOffered = 0;   ///< arrivals the profile generated
    std::uint64_t stormInjected = 0;  ///< accepted by the NIs
    std::uint64_t stormDelivered = 0; ///< replies returned
    std::uint64_t stormDropped = 0;   ///< backlog-full losses

    // Coherence-style traffic aggregates (traffic model "coherence").
    bool cohArmed = false;
    std::uint64_t cohInvalidations = 0; ///< Invalidates multicast by CBs
    std::uint64_t cohInvAcks = 0;       ///< InvAcks returned to CBs

    /**
     * Full observability snapshot (per-router, per-port, per-NI-buffer
     * counters, DESIGN.md §9); populated only when
     * SystemConfig::collectMetrics is set.
     */
    StatGroup metrics;

    double totalLatencyNs() const
    {
        return reqQueueNs + reqNetNs + repQueueNs + repNetNs;
    }
};

/**
 * One complete simulated system. Construct with a scheme config and a
 * workload; call run(); inspect the RunResult and the raw components.
 */
class System
{
  public:
    System(const SystemConfig &config, const WorkloadProfile &profile);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Execute the workload to completion (or maxCycles). */
    RunResult run();

    /** Advance one core cycle (exposed for tests). */
    void step();
    bool finished() const;
    Cycle now() const { return cycle_; }

    /**
     * Global time wheel consultation (DESIGN.md §14): every subsystem
     * posts its next due cycle; if the minimum is beyond the next
     * cycle, fast-forward the system over the dead gap (networks
     * advance their internal tick counters arithmetically). Returns
     * the number of cycles skipped (0 when any component has
     * immediate work, or when SystemConfig::timeSkip is off). run()
     * calls this after every step; exposed for tests.
     */
    Cycle maybeSkip();

    /** Core cycles fast-forwarded by maybeSkip() so far. */
    Cycle cyclesSkipped() const { return cyclesSkipped_; }

    /**
     * Reset every NoC measurement accumulator (propagates through the
     * networks to routers, NIs, latency and activity stats). step()
     * invokes this automatically when the configured warmupCycles
     * boundary is crossed; exposed for tests and custom drivers.
     */
    void resetStats();

    /** Has the configured CancelToken fired? (latched by step()). */
    bool cancelled() const { return cancelled_; }

    /** NoC area of this scheme instance (no simulation needed). */
    double areaMm2() const;

    const std::vector<Coord> &cbPlacement() const { return cbCoords_; }
    int numNetworks() const { return static_cast<int>(nets_.size()); }
    const Network &network(int i) const { return *nets_[i]; }
    int numPes() const { return static_cast<int>(pes_.size()); }
    const ProcessingElement &pe(int i) const { return *pes_[i]; }
    const CacheBank &cacheBank(int i) const { return *cbs_[i]; }
    int numCacheBanks() const { return static_cast<int>(cbs_.size()); }
    const EquiNoxDesign *design() const { return designUsed_; }

    /** The SchemeModel this system was built from. */
    const SchemeModel &schemeModel() const { return *model_; }

  private:
    void buildPlacement();
    void buildNetworks();
    void buildEndpoints(const WorkloadProfile &profile);
    void collect(RunResult &out) const;

    SystemConfig cfg_;
    const SchemeModel *model_; ///< registry-owned, resolved once
    PowerModel power_;

    std::vector<Coord> cbCoords_;
    std::vector<NodeId> cbNodes_; ///< cbCoords_ as tile node ids
    AddressMap amap_;

    EquiNoxDesign ownedDesign_;       ///< when the flow runs in-system
    const EquiNoxDesign *designUsed_ = nullptr;

    std::vector<std::unique_ptr<Network>> nets_;
    // nets_[0]: the single/request network.
    // separate-network schemes: nets_[1] = reply (or subnets 1..8).
    // InterposerCMesh: nets_[1] = the CMesh overlay.

    std::vector<std::unique_ptr<ProcessingElement>> pes_;
    std::vector<std::unique_ptr<CacheBank>> cbs_;
    std::vector<std::unique_ptr<StormEndpoint>> storms_;
    std::vector<std::unique_ptr<PacketInjector>> injectors_;
    std::vector<std::unique_ptr<PacketSink>> overlaySinks_;
    std::vector<PacketSink *> tileSinks_; ///< tile id -> endpoint

    // Traffic model state (DESIGN.md §16): the instance built for this
    // run, plus the trace capture/replay plumbing when trace= is set.
    std::unique_ptr<TrafficInstance> traffic_;
    std::unique_ptr<TraceData> replay_;
    std::unique_ptr<TraceCapture> capture_;
    std::string capturePath_;

    Cycle cycle_ = 0;
    bool cancelled_ = false;

    /** Global time wheel: one consultation epoch per core cycle. */
    TimeWheel wheel_;
    Cycle cyclesSkipped_ = 0;
};

} // namespace eqx

#endif // EQX_SIM_SYSTEM_HH
