#include "sim/config_serial.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace eqx {

void
KvBlob::add(const std::string &key, const std::string &v)
{
    kv_.emplace_back(key, v);
}

void
KvBlob::add(const std::string &key, const char *v)
{
    kv_.emplace_back(key, std::string(v));
}

void
KvBlob::add(const std::string &key, double v)
{
    char buf[40];
    if (std::isfinite(v)) {
        // to_chars(general, 17) emits exactly the C-locale %.17g bytes
        // but ignores LC_NUMERIC, so digests cannot drift under a
        // comma-decimal locale.
        auto r = std::to_chars(buf, buf + sizeof(buf), v,
                               std::chars_format::general, 17);
        *r.ptr = '\0';
    } else {
        std::snprintf(buf, sizeof(buf), "%s",
                      std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf"));
    }
    kv_.emplace_back(key, buf);
}

void
KvBlob::add(const std::string &key, std::uint64_t v)
{
    kv_.emplace_back(key, std::to_string(v));
}

void
KvBlob::add(const std::string &key, std::int64_t v)
{
    kv_.emplace_back(key, std::to_string(v));
}

void
KvBlob::add(const std::string &key, int v)
{
    kv_.emplace_back(key, std::to_string(v));
}

void
KvBlob::add(const std::string &key, bool v)
{
    kv_.emplace_back(key, v ? "1" : "0");
}

std::string
KvBlob::canonical() const
{
    auto sorted = kv_;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 1; i < sorted.size(); ++i)
        eqx_assert(sorted[i - 1].first != sorted[i].first,
                   "duplicate serialization key: ", sorted[i].first);
    std::string out;
    for (const auto &[k, v] : sorted) {
        out += k;
        out += '=';
        out += v;
        out += '\n';
    }
    return out;
}

namespace {

void
addCoordList(KvBlob &out, const std::string &key,
             const std::vector<Coord> &cs)
{
    std::string s;
    for (const Coord &c : cs) {
        s += std::to_string(c.x);
        s += ',';
        s += std::to_string(c.y);
        s += ';';
    }
    out.add(key, s);
}

void
serializeDesignParams(const DesignParams &dp, const std::string &p,
                      KvBlob &out)
{
    out.add(p + "width", dp.width);
    out.add(p + "height", dp.height);
    out.add(p + "num_cbs", dp.numCbs);
    out.add(p + "max_hops", dp.maxHops);
    out.add(p + "max_per_group", dp.maxPerGroup);
    out.add(p + "topo.kind", topologyKindName(dp.topo.kind));
    out.add(p + "topo.conc", dp.topo.concentration);
    out.add(p + "method", static_cast<int>(dp.method));
    out.add(p + "seed", dp.seed);
    out.add(p + "mcts.iters", dp.mcts.iterationsPerLevel);
    out.add(p + "mcts.ucb_c", dp.mcts.ucbC);
    out.add(p + "mcts.max_children", dp.mcts.maxChildrenPerNode);
    out.add(p + "mcts.seed", dp.mcts.seed);
    out.add(p + "w.load", dp.weights.load);
    out.add(p + "w.hops", dp.weights.hops);
    out.add(p + "w.crossings", dp.weights.crossings);
    out.add(p + "w.length", dp.weights.length);
    out.add(p + "w.repeaters", dp.weights.repeaters);
    out.add(p + "polish", dp.polishPasses);
    addCoordList(out, p + "fixed_placement", dp.fixedPlacement);
}

/**
 * A pinned design is hashed by the facts the simulator consumes:
 * geometry, CB placement and the per-CB EIR groups. Everything else
 * in EquiNoxDesign (plan, RDL report, evaluation) derives from those
 * deterministically through the design flow.
 */
void
serializeDesign(const EquiNoxDesign &d, KvBlob &out)
{
    out.add("pre.width", d.width);
    out.add("pre.height", d.height);
    addCoordList(out, "pre.cbs", d.cbs);
    std::string groups;
    for (const auto &[cb, eirs] : d.eirGroupsByNode()) {
        groups += std::to_string(cb);
        groups += ':';
        for (NodeId e : eirs) {
            groups += std::to_string(e);
            groups += ',';
        }
        groups += ';';
    }
    out.add("pre.eir_groups", groups);
}

void
serializeFaultConfig(const FaultConfig &fc, KvBlob &out)
{
    out.add("fault.rate_per_ktick", fc.ratePerKTick);
    out.add("fault.kinds", static_cast<std::uint64_t>(fc.kinds));
    out.add("fault.horizon", static_cast<std::uint64_t>(fc.horizonTicks));
    out.add("fault.seed", fc.seed);
    out.add("fault.kill_only_interposer", fc.killOnlyInterposer);
    out.add("fault.stall_ticks", static_cast<std::uint64_t>(fc.stallTicks));
    out.add("fault.retx_timeout",
            static_cast<std::uint64_t>(fc.retxTimeout));
    out.add("fault.retx_timeout_cap",
            static_cast<std::uint64_t>(fc.retxTimeoutCap));
    out.add("fault.retx_max", fc.retxMax);
    out.add("fault.ack_latency", static_cast<std::uint64_t>(fc.ackLatency));
    out.add("fault.detect_latency",
            static_cast<std::uint64_t>(fc.detectLatency));
    out.add("fault.force_protocol", fc.forceProtocol);
    std::string evs;
    for (const FaultEvent &e : fc.events) {
        evs += std::to_string(e.tick);
        evs += ',';
        evs += std::to_string(static_cast<int>(e.kind));
        evs += ',';
        evs += std::to_string(e.wire);
        evs += ',';
        evs += std::to_string(e.ni);
        evs += ',';
        evs += std::to_string(e.buf);
        evs += ',';
        evs += std::to_string(e.duration);
        evs += ',';
        evs += std::to_string(e.worms);
        evs += ',';
        evs += e.net;
        evs += ';';
    }
    out.add("fault.events", evs);
}

/**
 * Every traffic/storm/trace knob is hashed so sweep-cache cells from
 * different traffic models can never collide. The trace strings hash
 * by their spec text: a replay cell is keyed by the trace *path*, so
 * rewriting a trace file in place invalidates nothing — use fresh
 * paths for fresh captures (DESIGN.md §16).
 */
void
serializeTrafficConfig(const TrafficConfig &tc, KvBlob &out)
{
    out.add("traffic.model",
            tc.model.empty() ? std::string("synthetic") : tc.model);
    out.add("traffic.trace", tc.trace);
    out.add("traffic.storm_rate_per_k", tc.stormRatePerK);
    out.add("traffic.storm_horizon", tc.stormHorizon);
    out.add("traffic.storm_queue_cap", tc.stormQueueCap);
    out.add("traffic.storm_trough", tc.stormTrough);
    out.add("traffic.storm_write_frac", tc.stormWriteFrac);
    out.add("traffic.storm_hot_cbs", tc.stormHotCbs);
    out.add("traffic.storm_hot_frac", tc.stormHotFrac);
    out.add("traffic.coherence_vcs", tc.coherenceVcs);
    out.add("traffic.coh_region_lines", tc.cohRegionLines);
}

} // namespace

void
serializeSystemConfig(const SystemConfig &sc, KvBlob &out)
{
// Completeness guard: adding a SystemConfig field changes its size,
// which must be acknowledged here by serializing the new field (or
// documenting why it cannot affect results) and updating the
// expected size. Layout is checked only on the toolchain CI runs.
#if defined(__x86_64__) && defined(__GLIBCXX__) && !defined(_GLIBCXX_DEBUG)
    static_assert(sizeof(SystemConfig) == 664,
                  "SystemConfig changed: update serializeSystemConfig "
                  "and this size guard (see config_serial.hh)");
#endif

    out.add("sc.width", sc.width);
    out.add("sc.height", sc.height);
    out.add("sc.num_cbs", sc.numCbs);
    // The scheme identity: schemeKey when set, else the legacy enum's
    // canonical name — both spellings of one scheme hash identically.
    out.add("sc.scheme", !sc.schemeKey.empty() ? sc.schemeKey
                                               : schemeName(sc.scheme));
    out.add("sc.seed", sc.seed);

    out.add("sc.pe.l1_size", sc.pe.l1.sizeBytes);
    out.add("sc.pe.l1_line", sc.pe.l1.lineBytes);
    out.add("sc.pe.l1_ways", sc.pe.l1.ways);
    out.add("sc.pe.l1_mshrs", sc.pe.l1Mshrs);
    out.add("sc.pe.l1_targets", sc.pe.l1TargetsPerMshr);
    out.add("sc.pe.max_outstanding", sc.pe.maxOutstanding);
    out.add("sc.pe.issue_width", sc.pe.issueWidth);

    out.add("sc.cb.l2_size", sc.cb.l2.sizeBytes);
    out.add("sc.cb.l2_line", sc.cb.l2.lineBytes);
    out.add("sc.cb.l2_ways", sc.cb.l2.ways);
    out.add("sc.cb.mshrs", sc.cb.mshrs);
    out.add("sc.cb.targets", sc.cb.targetsPerMshr);
    out.add("sc.cb.input_queue", sc.cb.inputQueuePackets);
    out.add("sc.cb.reply_queue", sc.cb.replyQueuePackets);
    out.add("sc.cb.l2_hit_latency", sc.cb.l2HitLatency);
    out.add("sc.cb.requests_per_cycle", sc.cb.requestsPerCycle);
    out.add("sc.cb.hbm.channels", sc.cb.hbm.channels);
    out.add("sc.cb.hbm.banks", sc.cb.hbm.banksPerChannel);
    out.add("sc.cb.hbm.queue_depth", sc.cb.hbm.queueDepth);
    out.add("sc.cb.hbm.line", sc.cb.hbm.lineBytes);
    out.add("sc.cb.hbm.t_rcd", sc.cb.hbm.timing.tRCD);
    out.add("sc.cb.hbm.t_rp", sc.cb.hbm.timing.tRP);
    out.add("sc.cb.hbm.t_cl", sc.cb.hbm.timing.tCL);
    out.add("sc.cb.hbm.t_bl", sc.cb.hbm.timing.tBL);
    out.add("sc.cb.hbm.t_wr", sc.cb.hbm.timing.tWR);

    out.add("sc.sizes.read_req", sc.sizes.readRequestBits);
    out.add("sc.sizes.write_req", sc.sizes.writeRequestBits);
    out.add("sc.sizes.read_rep", sc.sizes.readReplyBits);
    out.add("sc.sizes.write_rep", sc.sizes.writeReplyBits);
    out.add("sc.sizes.inv", sc.sizes.invalidateBits);
    out.add("sc.sizes.inv_ack", sc.sizes.invAckBits);

    out.add("sc.vcs_per_port", sc.vcsPerPort);
    out.add("sc.vc_depth", sc.vcDepthFlits);
    out.add("sc.flit_bits", sc.flitBits);
    out.add("sc.mp_inj_ports", sc.multiPortInjPorts);
    out.add("sc.mp_ej_ports", sc.multiPortEjPorts);
    out.add("sc.da2_subnets", sc.da2Subnets);
    out.add("sc.cmesh_min_hops", sc.cmeshMinHops);
    out.add("sc.cmesh_flit_bits", sc.cmeshFlitBits);
    out.add("sc.reply_topo.kind", topologyKindName(sc.replyTopo.kind));
    out.add("sc.reply_topo.conc", sc.replyTopo.concentration);

    out.add("sc.has_pre_design", sc.preDesign != nullptr);
    if (sc.preDesign)
        serializeDesign(*sc.preDesign, out);
    else
        serializeDesignParams(sc.design, "sc.design.", out);

    out.add("sc.max_cycles", static_cast<std::uint64_t>(sc.maxCycles));
    out.add("sc.warmup_cycles",
            static_cast<std::uint64_t>(sc.warmupCycles));
    // Both tick loops are proven bit-identical (DESIGN.md §10), so
    // the exhaustive-tick toggle is deliberately NOT hashed: either
    // mode may serve the other's cached cells.
    out.add("sc.collect_metrics", sc.collectMetrics);

    serializeFaultConfig(sc.fault, out);
    serializeTrafficConfig(sc.traffic, out);
}

void
serializeWorkloadProfile(const WorkloadProfile &wp, KvBlob &out)
{
    out.add("wp.name", wp.name);
    out.add("wp.insts_per_pe", wp.instsPerPe);
    out.add("wp.mem_ratio", wp.memRatio);
    out.add("wp.read_frac", wp.readFrac);
    out.add("wp.private_lines", wp.privateLines);
    out.add("wp.shared_lines", wp.sharedLines);
    out.add("wp.shared_frac", wp.sharedFrac);
    out.add("wp.seq_prob", wp.seqProb);
}

} // namespace eqx
