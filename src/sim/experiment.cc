#include "sim/experiment.hh"

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>

#include "common/logging.hh"
#include "common/stats.hh"
#include "runner/jsonl.hh"
#include "runner/stream_seed.hh"

namespace eqx {

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : cfg_(std::move(config))
{
    eqx_assert(!cfg_.workloads.empty(), "experiment needs workloads");
}

const EquiNoxDesign &
ExperimentRunner::equinoxDesign()
{
    if (!designBuilt_) {
        DesignParams dp;
        dp.width = cfg_.width;
        dp.height = cfg_.height;
        dp.numCbs = cfg_.numCbs;
        dp.seed = cfg_.seed;
        design_ = buildEquiNoxDesign(dp);
        designBuilt_ = true;
        if (cfg_.verbose)
            eqx_inform("EquiNox design: ", design_.numEirs(), " EIRs, ",
                       design_.rdl.crossings, " crossings, score ",
                       design_.eval.score);
    }
    return design_;
}

SystemConfig
ExperimentRunner::makeSystemConfig(const SchemeModel &model) const
{
    SystemConfig sc;
    sc.width = cfg_.width;
    sc.height = cfg_.height;
    sc.numCbs = cfg_.numCbs;
    sc.schemeKey = model.name();
    if (auto e = model.legacyEnum())
        sc.scheme = *e;
    sc.seed = cfg_.seed;
    sc.warmupCycles = cfg_.warmupCycles;
    sc.collectMetrics = cfg_.collectMetrics;
    sc.fault = cfg_.fault;
    sc.traffic = cfg_.traffic;
    if (cfg_.tweak)
        cfg_.tweak(sc);
    return sc;
}

PreparedCell
ExperimentRunner::prepareCell(const std::string &scheme,
                              const WorkloadProfile &profile)
{
    const SchemeModel &model = SchemeRegistry::instance().byName(scheme);
    PreparedCell cell;
    cell.sc = makeSystemConfig(model);
    // The tweak hook may have pinned its own design (ablations do).
    if (model.usesEquiNoxDesign() && !cell.sc.preDesign)
        cell.sc.preDesign = &equinoxDesign();
    if (cfg_.decorrelateSeeds)
        cell.sc.seed =
            deriveStreamSeed(cfg_.seed, model.name(), profile.name);

    cell.wp = profile;
    cell.wp.instsPerPe = static_cast<std::uint64_t>(
        static_cast<double>(cell.wp.instsPerPe) * cfg_.instScale);
    if (cell.wp.instsPerPe < 64)
        cell.wp.instsPerPe = 64;
    return cell;
}

RunResult
ExperimentRunner::runOne(const std::string &scheme,
                         const WorkloadProfile &profile,
                         const CancelToken *cancel)
{
    PreparedCell cell = prepareCell(scheme, profile);
    cell.sc.cancel = cancel;
    System sys(cell.sc, cell.wp);
    return sys.run();
}

std::vector<CellResult>
ExperimentRunner::runMatrix()
{
    // Flatten the matrix in the canonical order (workload-major,
    // scheme-minor); the pool may execute cells in any order, but
    // every job writes only its own pre-assigned slot, so the
    // returned vector is invariant to scheduling.
    // Resolve every scheme key up front: an unknown key fails fast,
    // and aliases collapse to their canonical model.
    std::vector<const SchemeModel *> models;
    for (const auto &key : cfg_.schemes)
        models.push_back(&SchemeRegistry::instance().byName(key));

    struct CellRef
    {
        const WorkloadProfile *wp;
        const SchemeModel *model;
    };
    std::vector<CellRef> order;
    for (const auto &wp : cfg_.workloads)
        for (const SchemeModel *m : models)
            order.push_back({&wp, m});

    std::vector<CellResult> cells(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        cells[i].scheme = order[i].model->name();
        cells[i].benchmark = order[i].wp->name;
        cells[i].index = i;
    }

    // Shard predicate: drop cells another shard owns. Indices keep
    // their canonical (unsharded) values so shard outputs merge back
    // into single-process order.
    if (cfg_.cellFilter) {
        std::vector<CellRef> kept_order;
        std::vector<CellResult> kept_cells;
        for (std::size_t i = 0; i < order.size(); ++i)
            if (cfg_.cellFilter(cells[i])) {
                kept_order.push_back(order[i]);
                kept_cells.push_back(std::move(cells[i]));
            }
        order = std::move(kept_order);
        cells = std::move(kept_cells);
    }

    // The shared EquiNox design is lazily cached and must be built
    // before the fan-out (jobs only ever read it). Skip when a tweak
    // hook pins its own design — the cache would go unused.
    const SchemeModel *wants_design = nullptr;
    for (const SchemeModel *m : models)
        if (m->usesEquiNoxDesign()) {
            wants_design = m;
            break;
        }
    if (wants_design && !makeSystemConfig(*wants_design).preDesign)
        equinoxDesign();

    std::unique_ptr<JsonlWriter> jsonl;
    if (!cfg_.jsonlPath.empty())
        jsonl = std::make_unique<JsonlWriter>(cfg_.jsonlPath);

    JobPoolConfig pc;
    pc.workers = cfg_.workers;
    pc.timeoutSec = cfg_.jobTimeoutSec;
    pc.retries = cfg_.jobRetries;
    pc.progressEveryMs = cfg_.progress ? 200 : 0;
    pc.progressLabel = "sweep";
    pc.onJobDone = [&](std::size_t i, const JobReport &rep) {
        CellResult &cell = cells[i];
        if (rep.shortCircuited) {
            // The lookup hook restored the cell from cache/journal,
            // including its original attempts/failed fields; only the
            // wall clock (the lookup cost) is this run's own.
            cell.wallMs = rep.wallMs;
        } else {
            cell.failed = !rep.ok();
            cell.attempts = rep.attempts;
            cell.wallMs = rep.wallMs;
            cell.error = rep.error;
        }
        if (jsonl)
            jsonl->write(cellJsonRecord(cell));
        if (cfg_.cellDone)
            cfg_.cellDone(cell);
    };
    if (cfg_.cellLookup)
        // The content-addressed cache consult, running in the pool
        // path so cache-served cells never occupy a simulation slot.
        pc.shortCircuit = [&](std::size_t i) {
            CellResult &cell = cells[i];
            if (!cfg_.cellLookup(cell))
                return false;
            cell.fromCache = true;
            return true;
        };

    JobPool pool(pc);
    pool.run(order.size(), [&](const JobContext &ctx) {
        const CellRef &ref = order[ctx.index];
        if (cfg_.verbose)
            eqx_inform("running ", ref.wp->name, " on ",
                       ref.model->name());
        cells[ctx.index].result =
            runOne(ref.model->name(), *ref.wp, ctx.cancel);
        return cells[ctx.index].result.completed;
    });
    return cells;
}

std::string
cellJsonRecord(const CellResult &c)
{
    return cellJsonObject(c).str();
}

JsonObject
cellJsonObject(const CellResult &c)
{
    const RunResult &r = c.result;
    JsonObject o;
    o.field("benchmark", c.benchmark)
        .field("scheme", c.scheme)
        .field("failed", c.failed)
        .field("attempts", c.attempts)
        .field("wall_ms", c.wallMs);
    if (!c.error.empty())
        o.field("error", c.error);
    o.field("completed", r.completed)
        .field("cycles", static_cast<std::uint64_t>(r.cycles))
        .field("exec_ns", r.execNs)
        .field("total_insts", r.totalInsts)
        .field("ipc", r.ipc)
        .field("energy_pj", r.energyPj)
        .field("edp", r.edp)
        .field("area_mm2", r.areaMm2)
        .field("req_queue_ns", r.reqQueueNs)
        .field("req_net_ns", r.reqNetNs)
        .field("rep_queue_ns", r.repQueueNs)
        .field("rep_net_ns", r.repNetNs)
        .field("req_packets", r.reqPackets)
        .field("rep_packets", r.repPackets)
        .field("request_bits", r.requestBits)
        .field("reply_bits", r.replyBits)
        .field("req_p50_ns", r.reqP50Ns)
        .field("req_p95_ns", r.reqP95Ns)
        .field("req_p99_ns", r.reqP99Ns)
        .field("rep_p50_ns", r.repP50Ns)
        .field("rep_p95_ns", r.repP95Ns)
        .field("rep_p99_ns", r.repP99Ns)
        .field("max_eir_load", r.maxEirLoadPackets);
    // Fault-resilience columns appear only on fault-armed runs so
    // the un-faulted record schema stays byte-identical.
    if (r.faultArmed) {
        double dr = r.faultSeqPackets
                        ? static_cast<double>(r.faultDelivered) /
                              static_cast<double>(r.faultSeqPackets)
                        : 0.0;
        double rr = r.faultSeqPackets
                        ? static_cast<double>(r.faultRetx) /
                              static_cast<double>(r.faultSeqPackets)
                        : 0.0;
        o.field("fault_armed", r.faultArmed)
            .field("degraded", r.degraded)
            .field("fault_seq_packets", r.faultSeqPackets)
            .field("fault_delivered", r.faultDelivered)
            .field("fault_dups", r.faultDuplicates)
            .field("fault_retx", r.faultRetx)
            .field("fault_lost", r.faultLost)
            .field("fault_worms_dropped", r.faultWormsDropped)
            .field("fault_flits_dropped", r.faultFlitsDropped)
            .field("fault_credits_reconciled",
                   r.faultCreditsReconciled)
            .field("fault_masked_ports", r.faultMaskedPorts)
            .field("retx_rate", rr);
        // Storm-armed runs own the delivered_ratio column (their
        // end-to-end delivered/offered is the headline number); the
        // fault-plane ratio stays derivable from the counters above.
        if (!r.stormArmed)
            o.field("delivered_ratio", dr);
    }
    // Open-loop storm columns (traffic model storm-*), present only on
    // storm-armed runs so the closed-loop record schema is unchanged.
    if (r.stormArmed) {
        double dr = r.stormOffered
                        ? static_cast<double>(r.stormDelivered) /
                              static_cast<double>(r.stormOffered)
                        : 0.0;
        o.field("storm_armed", r.stormArmed)
            .field("storm_offered", r.stormOffered)
            .field("storm_injected", r.stormInjected)
            .field("storm_delivered", r.stormDelivered)
            .field("storm_dropped", r.stormDropped)
            .field("delivered_ratio", dr)
            .field("storm_saturated", r.stormDropped > 0);
    }
    // Coherence-style multi-flow columns (traffic model "coherence").
    if (r.cohArmed) {
        o.field("coh_armed", r.cohArmed)
            .field("coh_invalidations", r.cohInvalidations)
            .field("coh_inv_acks", r.cohInvAcks);
    }
    // The observability snapshot rides along "m."-prefixed so schema
    // consumers can separate the fixed columns from the per-router
    // keys (present only when metrics collection was enabled).
    for (const auto &[k, v] : r.metrics.all())
        o.field("m." + k, v);
    return o;
}

void
writeCellsCsv(const std::vector<CellResult> &cells,
              const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        eqx_fatal("cannot open '", path, "' for writing");
    std::fprintf(f,
                 "benchmark,scheme,completed,cycles,exec_ns,total_insts,"
                 "ipc,energy_pj,edp,area_mm2,req_queue_ns,req_net_ns,"
                 "rep_queue_ns,rep_net_ns,req_packets,rep_packets,"
                 "request_bits,reply_bits,req_p50_ns,req_p95_ns,"
                 "req_p99_ns,rep_p50_ns,rep_p95_ns,rep_p99_ns,"
                 "max_eir_load\n");
    for (const auto &c : cells) {
        const RunResult &r = c.result;
        std::fprintf(f,
                     "%s,%s,%d,%llu,%.3f,%llu,%.4f,%.1f,%.6g,%.4f,%.3f,"
                     "%.3f,%.3f,%.3f,%llu,%llu,%llu,%llu,%.3f,%.3f,"
                     "%.3f,%.3f,%.3f,%.3f,%llu\n",
                     c.benchmark.c_str(), c.scheme.c_str(),
                     r.completed ? 1 : 0,
                     static_cast<unsigned long long>(r.cycles), r.execNs,
                     static_cast<unsigned long long>(r.totalInsts),
                     r.ipc, r.energyPj, r.edp, r.areaMm2, r.reqQueueNs,
                     r.reqNetNs, r.repQueueNs, r.repNetNs,
                     static_cast<unsigned long long>(r.reqPackets),
                     static_cast<unsigned long long>(r.repPackets),
                     static_cast<unsigned long long>(r.requestBits),
                     static_cast<unsigned long long>(r.replyBits),
                     r.reqP50Ns, r.reqP95Ns, r.reqP99Ns, r.repP50Ns,
                     r.repP95Ns, r.repP99Ns,
                     static_cast<unsigned long long>(
                         r.maxEirLoadPackets));
    }
    std::fclose(f);
}

double
schemeGeomean(const std::vector<CellResult> &cells,
              const std::string &scheme,
              const std::function<double(const RunResult &)> &metric)
{
    // Cells carry canonical names; accept any registry key here.
    std::string name = SchemeRegistry::instance().byName(scheme).name();
    std::vector<double> vals;
    for (const auto &c : cells)
        if (c.scheme == name)
            vals.push_back(metric(c.result));
    return geomean(vals);
}

void
printNormalizedTable(const std::vector<CellResult> &cells,
                     const std::vector<std::string> &schemes,
                     const std::string &metric_name,
                     const std::function<double(const RunResult &)> &metric,
                     const std::string &baseline)
{
    const SchemeRegistry &reg = SchemeRegistry::instance();
    std::vector<std::string> names;
    for (const auto &s : schemes)
        names.push_back(reg.byName(s).name());
    std::string base_name = reg.byName(baseline).name();

    // benchmark -> scheme -> value
    std::map<std::string, std::map<std::string, double>> table;
    std::vector<std::string> bench_order;
    for (const auto &c : cells) {
        if (!table.count(c.benchmark))
            bench_order.push_back(c.benchmark);
        table[c.benchmark][c.scheme] = metric(c.result);
    }

    std::printf("\n%s (normalized to %s)\n", metric_name.c_str(),
                base_name.c_str());
    std::printf("%-16s", "benchmark");
    for (const auto &s : names)
        std::printf(" %16s", s.c_str());
    std::printf("\n");

    std::map<std::string, std::vector<double>> norm_per_scheme;
    for (const auto &b : bench_order) {
        double base =
            table[b].count(base_name) ? table[b][base_name] : 0;
        std::printf("%-16s", b.c_str());
        for (const auto &s : names) {
            double v = table[b].count(s) ? table[b][s] : 0;
            double norm = base > 0 ? v / base : 0;
            norm_per_scheme[s].push_back(norm);
            std::printf(" %16.3f", norm);
        }
        std::printf("\n");
    }
    std::printf("%-16s", "geomean");
    for (const auto &s : names)
        std::printf(" %16.3f", geomean(norm_per_scheme[s]));
    std::printf("\n");
}

} // namespace eqx
