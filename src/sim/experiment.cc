#include "sim/experiment.hh"

#include <cmath>
#include <cstdio>
#include <map>

#include "common/logging.hh"
#include "common/stats.hh"

namespace eqx {

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : cfg_(std::move(config))
{
    eqx_assert(!cfg_.workloads.empty(), "experiment needs workloads");
}

const EquiNoxDesign &
ExperimentRunner::equinoxDesign()
{
    if (!designBuilt_) {
        DesignParams dp;
        dp.width = cfg_.width;
        dp.height = cfg_.height;
        dp.numCbs = cfg_.numCbs;
        dp.seed = cfg_.seed;
        design_ = buildEquiNoxDesign(dp);
        designBuilt_ = true;
        if (cfg_.verbose)
            eqx_inform("EquiNox design: ", design_.numEirs(), " EIRs, ",
                       design_.rdl.crossings, " crossings, score ",
                       design_.eval.score);
    }
    return design_;
}

SystemConfig
ExperimentRunner::makeSystemConfig(Scheme scheme) const
{
    SystemConfig sc;
    sc.width = cfg_.width;
    sc.height = cfg_.height;
    sc.numCbs = cfg_.numCbs;
    sc.scheme = scheme;
    sc.seed = cfg_.seed;
    if (cfg_.tweak)
        cfg_.tweak(sc);
    return sc;
}

RunResult
ExperimentRunner::runOne(Scheme scheme, const WorkloadProfile &profile)
{
    SystemConfig sc = makeSystemConfig(scheme);
    // The tweak hook may have pinned its own design (ablations do).
    if (scheme == Scheme::EquiNox && !sc.preDesign)
        sc.preDesign = &equinoxDesign();

    WorkloadProfile wp = profile;
    wp.instsPerPe = static_cast<std::uint64_t>(
        static_cast<double>(wp.instsPerPe) * cfg_.instScale);
    if (wp.instsPerPe < 64)
        wp.instsPerPe = 64;

    System sys(sc, wp);
    return sys.run();
}

std::vector<CellResult>
ExperimentRunner::runMatrix()
{
    std::vector<CellResult> cells;
    for (const auto &wp : cfg_.workloads) {
        for (Scheme s : cfg_.schemes) {
            if (cfg_.verbose)
                eqx_inform("running ", wp.name, " on ", schemeName(s));
            cells.push_back({s, wp.name, runOne(s, wp)});
        }
    }
    return cells;
}

void
writeCellsCsv(const std::vector<CellResult> &cells,
              const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        eqx_fatal("cannot open '", path, "' for writing");
    std::fprintf(f,
                 "benchmark,scheme,completed,cycles,exec_ns,total_insts,"
                 "ipc,energy_pj,edp,area_mm2,req_queue_ns,req_net_ns,"
                 "rep_queue_ns,rep_net_ns,req_packets,rep_packets,"
                 "request_bits,reply_bits\n");
    for (const auto &c : cells) {
        const RunResult &r = c.result;
        std::fprintf(f,
                     "%s,%s,%d,%llu,%.3f,%llu,%.4f,%.1f,%.6g,%.4f,%.3f,"
                     "%.3f,%.3f,%.3f,%llu,%llu,%llu,%llu\n",
                     c.benchmark.c_str(), schemeName(c.scheme),
                     r.completed ? 1 : 0,
                     static_cast<unsigned long long>(r.cycles), r.execNs,
                     static_cast<unsigned long long>(r.totalInsts),
                     r.ipc, r.energyPj, r.edp, r.areaMm2, r.reqQueueNs,
                     r.reqNetNs, r.repQueueNs, r.repNetNs,
                     static_cast<unsigned long long>(r.reqPackets),
                     static_cast<unsigned long long>(r.repPackets),
                     static_cast<unsigned long long>(r.requestBits),
                     static_cast<unsigned long long>(r.replyBits));
    }
    std::fclose(f);
}

double
schemeGeomean(const std::vector<CellResult> &cells, Scheme scheme,
              const std::function<double(const RunResult &)> &metric)
{
    std::vector<double> vals;
    for (const auto &c : cells)
        if (c.scheme == scheme)
            vals.push_back(metric(c.result));
    return geomean(vals);
}

void
printNormalizedTable(const std::vector<CellResult> &cells,
                     const std::vector<Scheme> &schemes,
                     const std::string &metric_name,
                     const std::function<double(const RunResult &)> &metric,
                     Scheme baseline)
{
    // benchmark -> scheme -> value
    std::map<std::string, std::map<Scheme, double>> table;
    std::vector<std::string> bench_order;
    for (const auto &c : cells) {
        if (!table.count(c.benchmark))
            bench_order.push_back(c.benchmark);
        table[c.benchmark][c.scheme] = metric(c.result);
    }

    std::printf("\n%s (normalized to %s)\n", metric_name.c_str(),
                schemeName(baseline));
    std::printf("%-16s", "benchmark");
    for (Scheme s : schemes)
        std::printf(" %16s", schemeName(s));
    std::printf("\n");

    std::map<Scheme, std::vector<double>> norm_per_scheme;
    for (const auto &b : bench_order) {
        double base = table[b].count(baseline) ? table[b][baseline] : 0;
        std::printf("%-16s", b.c_str());
        for (Scheme s : schemes) {
            double v = table[b].count(s) ? table[b][s] : 0;
            double norm = base > 0 ? v / base : 0;
            norm_per_scheme[s].push_back(norm);
            std::printf(" %16.3f", norm);
        }
        std::printf("\n");
    }
    std::printf("%-16s", "geomean");
    for (Scheme s : schemes)
        std::printf(" %16.3f", geomean(norm_per_scheme[s]));
    std::printf("\n");
}

} // namespace eqx
