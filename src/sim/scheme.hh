/**
 * @file
 * The seven compared NoC schemes (paper Section 5) and the full-system
 * configuration that instantiates them.
 */

#ifndef EQX_SIM_SCHEME_HH
#define EQX_SIM_SCHEME_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancel.hh"
#include "core/design_flow.hh"
#include "fault/fault_model.hh"
#include "gpu/cache_bank.hh"
#include "gpu/pe.hh"
#include "noc/params.hh"
#include "traffic/traffic_config.hh"

namespace eqx {

/** The compared schemes, in the paper's order. */
enum class Scheme : std::uint8_t
{
    SingleBase = 0,  ///< one shared physical network, Diamond placement
    VcMono,          ///< + VC monopolization [Jang et al.]
    InterposerCMesh, ///< + concentrated interposer overlay [Jerger et al.]
    SeparateBase,    ///< split request/reply physical networks
    Da2Mesh,         ///< reply net split into 8 narrow 2.5x subnets [5]
    MultiPort,       ///< multi-ported CB routers [Bakhoda et al.]
    EquiNox,         ///< the paper's proposal
};

// Legacy scheme queries, answered by the SchemeRegistry
// (src/schemes): every enum value maps to a registered SchemeModel.
const char *schemeName(Scheme s);
std::vector<Scheme> allSchemes();

/** True for schemes with one shared physical network. */
bool isSingleNetwork(Scheme s);

/** Full-system configuration. */
struct SystemConfig
{
    int width = 8;
    int height = 8;
    int numCbs = 8;
    Scheme scheme = Scheme::SeparateBase;

    /**
     * Registry key of the scheme to build (SchemeRegistry name or
     * alias, matched case-insensitively). When non-empty it overrides
     * `scheme`, which lets registry-only variants like "EquiNox-XY" —
     * schemes with no legacy enum value — run through the stock
     * System/ExperimentRunner stack.
     */
    std::string schemeKey;

    std::uint64_t seed = 1;

    PeParams pe;
    CbParams cb;
    PacketSizes sizes;

    // Base NoC parameters applied to every network the scheme builds.
    int vcsPerPort = 2;
    int vcDepthFlits = 5;
    int flitBits = 128;

    // Scheme-specific knobs. MultiPort doubles the CB router's
    // injection and ejection ports (Bakhoda et al. add ports rather
    // than replicate the NI fourfold); the abl_eir_count bench sweeps
    // higher port counts.
    int multiPortInjPorts = 2;
    int multiPortEjPorts = 2;
    int da2Subnets = 8;        ///< reply subnets, each 1/8 flit width
    int cmeshMinHops = 3;      ///< mesh distance that prefers the overlay
    int cmeshFlitBits = 256;

    /**
     * Reply-fabric topology (DESIGN.md §17): the geometry of every
     * reply network the scheme builds. Mesh (the default) reproduces
     * the paper byte-identically; torus and cmesh are the wrap/
     * concentrated variants the "-Torus"/"-CMesh" registry schemes
     * force. Request fabrics stay mesh — the paper's request-side
     * results are the control group every comparison shares.
     */
    TopoSpec replyTopo;

    /**
     * EquiNox design to deploy. When null and scheme == EquiNox, the
     * system runs the full design flow itself (seeded by `seed`).
     * Benches reuse one design across all benchmarks via this pointer.
     */
    const EquiNoxDesign *preDesign = nullptr;
    DesignParams design; ///< used when preDesign is null

    Cycle maxCycles = 2'000'000; ///< runaway guard

    /**
     * Measurement warmup: when > 0, every NoC statistic (latency,
     * activity, per-router/per-NI counters) is reset at this core
     * cycle, so reported numbers exclude the cold-start transient.
     * Packets in flight at the boundary are measured from their
     * original timestamps; 0 keeps the legacy measure-from-cycle-0
     * behaviour. Simulation behaviour is unaffected either way.
     */
    Cycle warmupCycles = 0;

    /**
     * Run every network with the exhaustive (pre-activity-scheduler)
     * internal tick loop instead of active-set scheduling. Results are
     * bit-identical either way (DESIGN.md §10); exposed for the
     * equivalence tests and before/after benchmarks.
     */
    bool exhaustiveNocTick = false;

    /**
     * Let the cycle loop consult the global time wheel (DESIGN.md
     * §14) and fast-forward over cycles in which no PE, cache bank,
     * HBM channel or network has work. Results are bit-identical
     * either way — skipped cycles are provably no-ops — and skipping
     * is automatically suppressed for exhaustive-tick and fault-armed
     * networks, which tick unconditionally. Off switches every cycle
     * back to an explicit step() (equivalence tests, debugging).
     */
    bool timeSkip = true;

    /**
     * Collect the full per-router / per-port / per-NI observability
     * snapshot into RunResult::metrics (DESIGN.md §9). Off by default:
     * the snapshot is a few thousand keys per run.
     */
    bool collectMetrics = false;

    /**
     * Optional cooperative cancellation (JobPool timeout watchdog).
     * Polled once per core cycle in System::step; a cancelled run
     * winds down at the next cycle boundary with completed == false.
     */
    const CancelToken *cancel = nullptr;

    /**
     * Fault injection and recovery (DESIGN.md §11). Disabled by
     * default; when enabled, every network the scheme builds is armed
     * with this config under a per-network stream seed derived from
     * (fault.seed ? fault.seed : seed, "fault", network name), so
     * sweeps stay decorrelated and reproducible regardless of worker
     * count.
     */
    FaultConfig fault;

    /**
     * Traffic model selection and knobs (DESIGN.md §16). The default
     * is the legacy closed-loop synthetic path, byte-identical to
     * pre-traffic builds; storm models replace the PEs with open-loop
     * rate-driven endpoints, the coherence model arms the CB sharer
     * directories, and trace= captures or replays the op streams.
     */
    TrafficConfig traffic;
};

} // namespace eqx

#endif // EQX_SIM_SCHEME_HH
