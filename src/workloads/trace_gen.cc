#include "workloads/trace_gen.hh"

#include "common/logging.hh"

namespace eqx {

PeTraceGen::PeTraceGen(const WorkloadProfile &profile, int pe_index,
                       std::uint64_t seed)
    : profile_(profile), pe_(pe_index),
      rng_(seed ^ (0x9e3779b97f4a7c15ULL *
                   static_cast<std::uint64_t>(pe_index + 1))),
      remaining_(profile.instsPerPe)
{
    eqx_assert(profile_.privateLines > 0 && profile_.sharedLines > 0,
               "workload regions must be non-empty");
    seqLine_ = rng_.nextBounded(
        static_cast<std::uint64_t>(profile_.privateLines));
}

Addr
PeTraceGen::privateBase() const
{
    // Each PE's private region lives in its own 1 GiB window above the
    // shared region, so regions never alias.
    return (static_cast<Addr>(pe_) + 1) << 30;
}

Addr
PeTraceGen::lineToAddr(Addr region_base, std::uint64_t line) const
{
    return region_base + line * kLineBytes;
}

bool
PeTraceGen::next(TraceOp &op)
{
    if (remaining_ == 0)
        return false;
    --remaining_;

    op = TraceOp{};
    if (!rng_.chance(profile_.memRatio))
        return true; // plain ALU instruction

    op.isMem = true;
    op.isWrite = !rng_.chance(profile_.readFrac);

    // Continue the current walk or start a new one.
    bool continue_seq = rng_.chance(profile_.seqProb);
    if (!continue_seq) {
        inShared_ = rng_.chance(profile_.sharedFrac);
        std::uint64_t region = inShared_
                                   ? static_cast<std::uint64_t>(
                                         profile_.sharedLines)
                                   : static_cast<std::uint64_t>(
                                         profile_.privateLines);
        seqLine_ = rng_.nextBounded(region);
    } else {
        std::uint64_t region = inShared_
                                   ? static_cast<std::uint64_t>(
                                         profile_.sharedLines)
                                   : static_cast<std::uint64_t>(
                                         profile_.privateLines);
        seqLine_ = (seqLine_ + 1) % region;
    }
    Addr base = inShared_ ? 0 : privateBase();
    op.addr = lineToAddr(base, seqLine_);
    return true;
}

} // namespace eqx
