#include "workloads/profiles.hh"

#include "common/logging.hh"

namespace eqx {

namespace {

/**
 * Per-benchmark parameters. Intensity classes follow the published
 * characterizations of Rodinia / CUDA SDK kernels: streaming kernels
 * (backprop, bfs, kmeans, fastWalshTransform, scan, ...) are memory-
 * intensive with large working sets; myocyte / gaussian / lavaMD are
 * compute-bound; stencil kernels (hotspot, srad, pathfinder) sit in
 * between with strong sequential locality.
 */
std::vector<WorkloadProfile>
buildSuite()
{
    // name, insts, memRatio, readFrac, privLines, sharedLines,
    // sharedFrac, seqProb
    return {
        // --- Rodinia ---
        {"backprop",        3000, 0.42, 0.72, 6144, 8192, 0.25, 0.70},
        {"bfs",             2800, 0.45, 0.88, 8192, 16384, 0.45, 0.15},
        {"b+tree",          2600, 0.38, 0.90, 6144, 12288, 0.40, 0.20},
        {"cfd",             3200, 0.40, 0.80, 8192, 8192, 0.20, 0.60},
        {"dwt2d",           2800, 0.35, 0.75, 4096, 4096, 0.15, 0.75},
        {"gaussian",        3600, 0.10, 0.85, 1024, 2048, 0.30, 0.65},
        {"heartwall",       3000, 0.44, 0.82, 8192, 8192, 0.25, 0.55},
        {"hotspot",         3000, 0.30, 0.78, 4096, 4096, 0.15, 0.80},
        {"hotspot3D",       3000, 0.34, 0.78, 6144, 6144, 0.15, 0.75},
        {"huffman",         2400, 0.36, 0.85, 4096, 8192, 0.35, 0.30},
        {"kmeans",          3000, 0.48, 0.85, 8192, 12288, 0.35, 0.60},
        {"lavaMD",          3600, 0.14, 0.80, 1536, 2048, 0.20, 0.55},
        {"leukocyte",       3200, 0.26, 0.82, 3072, 4096, 0.20, 0.60},
        {"lud",             3000, 0.28, 0.80, 3072, 6144, 0.30, 0.55},
        {"myocyte",         4000, 0.06, 0.80,  512, 1024, 0.20, 0.60},
        {"nn",              2400, 0.40, 0.92, 6144, 8192, 0.30, 0.70},
        {"nw",              2600, 0.36, 0.80, 4096, 8192, 0.30, 0.55},
        {"particlefilter",  3000, 0.42, 0.84, 8192, 8192, 0.30, 0.45},
        {"pathfinder",      2800, 0.32, 0.82, 4096, 4096, 0.15, 0.80},
        {"srad",            3000, 0.38, 0.78, 6144, 6144, 0.15, 0.75},
        {"streamcluster",   2800, 0.46, 0.86, 8192, 16384, 0.40, 0.50},
        // --- NVIDIA CUDA SDK ---
        {"blackScholes",    3000, 0.30, 0.70, 4096, 2048, 0.10, 0.85},
        {"fastWalshTrans",  2800, 0.46, 0.80, 8192, 8192, 0.25, 0.55},
        {"monteCarlo",      3200, 0.40, 0.86, 8192, 8192, 0.30, 0.35},
        {"reduction",       2600, 0.38, 0.90, 6144, 6144, 0.25, 0.75},
        {"scan",            2600, 0.46, 0.82, 8192, 8192, 0.25, 0.70},
        {"sortingNetworks", 2800, 0.44, 0.80, 8192, 8192, 0.30, 0.40},
        {"transpose",       2600, 0.42, 0.76, 6144, 6144, 0.15, 0.65},
        {"vectorAdd",       2400, 0.40, 0.70, 6144, 2048, 0.05, 0.90},
    };
}

} // namespace

const std::vector<WorkloadProfile> &
workloadSuite()
{
    static const std::vector<WorkloadProfile> suite = buildSuite();
    return suite;
}

const WorkloadProfile *
findWorkload(const std::string &name)
{
    for (const auto &p : workloadSuite())
        if (p.name == name)
            return &p;
    return nullptr;
}

std::string
workloadNameList()
{
    std::string out;
    for (const auto &p : workloadSuite()) {
        if (!out.empty())
            out += ", ";
        out += p.name;
    }
    return out;
}

const WorkloadProfile &
workloadByName(const std::string &name)
{
    if (const WorkloadProfile *p = findWorkload(name))
        return *p;
    eqx_fatal("unknown workload '", name, "'; suite benchmarks: ",
              workloadNameList());
}

std::vector<WorkloadProfile>
workloadSubset(std::size_t count)
{
    const auto &suite = workloadSuite();
    std::vector<WorkloadProfile> out;
    for (std::size_t i = 0; i < suite.size() && i < count; ++i)
        out.push_back(suite[i]);
    return out;
}

std::vector<WorkloadProfile>
workloadSubset(const std::vector<std::string> &names)
{
    std::vector<WorkloadProfile> out;
    for (const auto &n : names)
        out.push_back(workloadByName(n));
    return out;
}

} // namespace eqx
