/**
 * @file
 * Synthetic workload profiles standing in for the paper's 29 Rodinia
 * and NVIDIA CUDA SDK benchmarks. Each profile parameterizes a per-PE
 * instruction/memory stream (intensity, read mix, locality,
 * burstiness) so that the NoC sees the same class of many-to-few-
 * to-many load the real binaries generate. See DESIGN.md Section 2
 * for the substitution rationale.
 */

#ifndef EQX_WORKLOADS_PROFILES_HH
#define EQX_WORKLOADS_PROFILES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace eqx {

/** Parameters of one benchmark's synthetic memory behaviour. */
struct WorkloadProfile
{
    std::string name;
    std::uint64_t instsPerPe = 3000; ///< instructions per PE
    double memRatio = 0.3;   ///< fraction of instructions touching memory
    double readFrac = 0.8;   ///< fraction of memory ops that are loads
    int privateLines = 2048; ///< per-PE private working set (64 B lines)
    int sharedLines = 4096;  ///< globally shared region size
    double sharedFrac = 0.2; ///< accesses hitting the shared region
    double seqProb = 0.6;    ///< sequential-walk continuation probability
};

/** The full 29-benchmark suite (21 Rodinia + 8 CUDA SDK). */
const std::vector<WorkloadProfile> &workloadSuite();

/** Look up a profile by name; nullptr if unknown. */
const WorkloadProfile *findWorkload(const std::string &name);

/**
 * Look up a profile by name; fatal if unknown, listing every
 * registered benchmark (the SchemeRegistry::byName contract, so typos
 * on a CLI name the fix instead of just the failure).
 */
const WorkloadProfile &workloadByName(const std::string &name);

/** Comma-separated suite names, for usage text and fatal messages. */
std::string workloadNameList();

/** A reduced suite for quick runs (used by tests and examples). */
std::vector<WorkloadProfile> workloadSubset(std::size_t count);

/**
 * The named benchmarks, in the order given; fatal on an unknown name,
 * listing the full suite.
 */
std::vector<WorkloadProfile>
workloadSubset(const std::vector<std::string> &names);

} // namespace eqx

#endif // EQX_WORKLOADS_PROFILES_HH
