/**
 * @file
 * Per-PE synthetic instruction/memory stream driven by a
 * WorkloadProfile. Deterministic for a given (profile, pe, seed)
 * triple, so every scheme sees the identical access stream.
 */

#ifndef EQX_WORKLOADS_TRACE_GEN_HH
#define EQX_WORKLOADS_TRACE_GEN_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "workloads/profiles.hh"

namespace eqx {

/** One generated instruction. */
struct TraceOp
{
    bool isMem = false;
    bool isWrite = false;
    Addr addr = 0; ///< line-aligned byte address (mem ops only)
};

/**
 * The generator walks a private per-PE region and a shared region.
 * Sequential bursts continue with probability seqProb; otherwise the
 * next access jumps uniformly inside the selected region.
 */
class PeTraceGen
{
  public:
    static constexpr int kLineBytes = 64;

    PeTraceGen(const WorkloadProfile &profile, int pe_index,
               std::uint64_t seed);

    /** Produce the next instruction; false when the stream is done. */
    bool next(TraceOp &op);

    std::uint64_t remaining() const { return remaining_; }
    std::uint64_t total() const { return profile_.instsPerPe; }

  private:
    Addr privateBase() const;
    Addr lineToAddr(Addr region_base, std::uint64_t line) const;

    WorkloadProfile profile_;
    int pe_;
    Rng rng_;
    std::uint64_t remaining_;
    std::uint64_t seqLine_ = 0;  ///< cursor for sequential walks
    bool inShared_ = false;
};

} // namespace eqx

#endif // EQX_WORKLOADS_TRACE_GEN_HH
