/**
 * @file
 * Shared base of the EquiNox scheme variants: deploys (or runs) the
 * EquiNox design flow for CB placement, attaches the design's EIR
 * groups to the reply network, and reports the measured max
 * per-injection-point load. Variant TUs subclass this and override
 * the identity block plus whatever build facts differ — see
 * equinox_xy.cc for the worked example (XY reply routing).
 */

#ifndef EQX_SCHEMES_EQUINOX_MODEL_HH
#define EQX_SCHEMES_EQUINOX_MODEL_HH

#include "schemes/scheme_model.hh"

namespace eqx {

class EquiNoxFamilyModel : public SplitSchemeModel
{
  public:
    bool usesEquiNoxDesign() const override { return true; }

    const EquiNoxDesign *placeCbs(const SystemConfig &cfg,
                                  EquiNoxDesign &owned,
                                  std::vector<Coord> &cbs) const override;

    void collectSchemeStats(
        const SchemeBuild &b,
        const std::vector<std::unique_ptr<Network>> &nets,
        RunResult &out) const override;

  protected:
    void modReplySpec(const SchemeBuild &b,
                      NetworkSpec &rep) const override;
};

} // namespace eqx

#endif // EQX_SCHEMES_EQUINOX_MODEL_HH
