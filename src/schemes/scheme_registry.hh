/**
 * @file
 * Process-wide registry of SchemeModels. Maps case-insensitive string
 * keys (canonical names + aliases) and the legacy Scheme enum to
 * models. The singleton registers the built-in schemes in the paper's
 * comparison order (see registration.hh); a default-constructed
 * registry is empty, for tests.
 */

#ifndef EQX_SCHEMES_SCHEME_REGISTRY_HH
#define EQX_SCHEMES_SCHEME_REGISTRY_HH

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "schemes/scheme_model.hh"

namespace eqx {

class SchemeRegistry
{
  public:
    /** The global registry, populated with every built-in scheme. */
    static SchemeRegistry &instance();

    /** An empty registry (tests build private ones). */
    SchemeRegistry() = default;

    SchemeRegistry(const SchemeRegistry &) = delete;
    SchemeRegistry &operator=(const SchemeRegistry &) = delete;
    SchemeRegistry(SchemeRegistry &&) = default;
    SchemeRegistry &operator=(SchemeRegistry &&) = default;

    /**
     * Register a model under its name, aliases and legacy enum.
     * Rejects (returns false, registers nothing) when any key or the
     * enum value collides with an earlier registration.
     */
    bool add(std::unique_ptr<SchemeModel> model);

    /** Case-insensitive lookup by name or alias; null when unknown. */
    const SchemeModel *find(std::string_view key) const;

    /** Like find(), but fatal (listing the registered keys). */
    const SchemeModel &byName(std::string_view key) const;

    /** The model behind a legacy enum value (fatal when unmapped). */
    const SchemeModel &byEnum(Scheme s) const;

    /** Every registered model, in registration order. */
    const std::vector<const SchemeModel *> &models() const
    {
        return order_;
    }

    /** Canonical names, registration order. */
    std::vector<std::string> names() const;

    /** "SingleBase, VC-Mono, ..." — for error messages and usage. */
    std::string keyList() const;

  private:
    std::vector<std::unique_ptr<SchemeModel>> owned_;
    std::vector<const SchemeModel *> order_;
    std::map<std::string, const SchemeModel *, std::less<>> byKey_;
    std::map<Scheme, const SchemeModel *> byEnum_;
};

/** Canonical names of the paper's seven schemes, comparison order. */
std::vector<std::string> paperSchemeNames();

/** Canonical names of every registered scheme, registration order. */
std::vector<std::string> allSchemeNames();

} // namespace eqx

#endif // EQX_SCHEMES_SCHEME_REGISTRY_HH
