/**
 * @file
 * DA2Mesh: the reply network split into 8 narrow 2.5x-clocked XY
 * subnets; replies stripe across them by destination.
 */

#include <algorithm>
#include <string>

#include "schemes/injectors.hh"
#include "schemes/registration.hh"
#include "schemes/scheme_registry.hh"

namespace eqx {

namespace {

class Da2MeshModel final : public SplitSchemeModel
{
  public:
    const char *name() const override { return "DA2Mesh"; }

    std::vector<std::string>
    aliases() const override
    {
        return {"da2"};
    }

    const char *
    summary() const override
    {
        return "reply net split into 8 narrow 2.5x subnets";
    }

    std::optional<Scheme>
    legacyEnum() const override
    {
        return Scheme::Da2Mesh;
    }

    const char *replyNetName() const override { return "reply-sub0"; }

    std::vector<NetworkSpec>
    networkSpecs(const SchemeBuild &b) const override
    {
        const SystemConfig &cfg = b.cfg;
        std::vector<NetworkSpec> out;
        out.push_back(requestSpec(b));

        for (int s = 0; s < cfg.da2Subnets; ++s) {
            NetworkSpec sub;
            sub.params =
                baseParams(cfg, "reply-sub" + std::to_string(s));
            sub.params.classes = {false, true};
            sub.params.flitBits =
                std::max(1, cfg.flitBits / cfg.da2Subnets);
            sub.params.routing = RoutingMode::XY;
            // Narrow wormhole buffers: packets span several
            // routers rather than fitting one VC, which is how the
            // original DA2Mesh keeps its subnets cheap.
            sub.params.vcDepthFlits = 8;
            // 2.5x clock: 3 ticks on even core cycles, 2 on odd.
            sub.params.ticksEvenCycle = 3;
            sub.params.ticksOddCycle = 2;
            out.push_back(std::move(sub));
        }
        return out;
    }

    std::unique_ptr<PacketInjector>
    makeInjector(const SchemeBuild &,
                 const std::vector<std::unique_ptr<Network>> &nets,
                 NodeId node, bool for_reply) const override
    {
        if (!for_reply)
            return std::make_unique<DirectInjector>(nets[0].get(),
                                                    node);
        std::vector<Network *> subs;
        for (std::size_t i = 1; i < nets.size(); ++i)
            subs.push_back(nets[i].get());
        return std::make_unique<SubnetInjector>(std::move(subs), node);
    }
};

} // namespace

void
registerDa2MeshSchemes(SchemeRegistry &r)
{
    r.add(std::make_unique<Da2MeshModel>());
}

} // namespace eqx
