/**
 * @file
 * Internal registration hooks: one per scheme-family translation unit.
 * SchemeRegistry::instance() calls them exactly once, in the paper's
 * comparison order, so registration order (and therefore the default
 * scheme enumeration) is deterministic regardless of link order. A new
 * scheme TU adds its hook here and to the instance() call list —
 * nothing else in the tree changes.
 */

#ifndef EQX_SCHEMES_REGISTRATION_HH
#define EQX_SCHEMES_REGISTRATION_HH

namespace eqx {

class SchemeRegistry;

void registerSingleSchemes(SchemeRegistry &r);     // single.cc
void registerCmeshSchemes(SchemeRegistry &r);      // cmesh.cc
void registerSeparateBaseSchemes(SchemeRegistry &r); // separate_base.cc
void registerDa2MeshSchemes(SchemeRegistry &r);    // da2mesh.cc
void registerMultiPortSchemes(SchemeRegistry &r);  // multiport.cc
void registerEquiNoxSchemes(SchemeRegistry &r);    // equinox.cc
void registerEquiNoxXySchemes(SchemeRegistry &r);  // equinox_xy.cc
void registerTopologyVariantSchemes(SchemeRegistry &r); // topology_variants.cc

} // namespace eqx

#endif // EQX_SCHEMES_REGISTRATION_HH
