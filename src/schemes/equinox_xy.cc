/**
 * @file
 * EquiNox-XY: the EquiNox reply network under plain XY
 * dimension-order routing instead of minimal-adaptive. The routing
 * ablation for the paper's claim that EIR spreading, not adaptivity,
 * carries the reply-side win — and the worked example of adding a
 * scheme variant as one translation unit (DESIGN.md §12): everything
 * it needs is this file plus its registration hook; System is
 * untouched.
 */

#include "schemes/equinox_model.hh"
#include "schemes/registration.hh"
#include "schemes/scheme_registry.hh"

namespace eqx {

namespace {

class EquiNoxXyModel final : public EquiNoxFamilyModel
{
  public:
    const char *name() const override { return "EquiNox-XY"; }

    std::vector<std::string>
    aliases() const override
    {
        return {"equinoxxy"};
    }

    const char *
    summary() const override
    {
        return "EquiNox with an XY-routed (non-adaptive) reply net";
    }

    // No legacyEnum(): this variant exists only under its string key.

  protected:
    RoutingMode
    replyRouting() const override
    {
        return RoutingMode::XY;
    }
};

} // namespace

void
registerEquiNoxXySchemes(SchemeRegistry &r)
{
    r.add(std::make_unique<EquiNoxXyModel>());
}

} // namespace eqx
