/**
 * @file
 * EquiNox, the paper's proposal: split networks whose reply side gives
 * each cache bank a group of Equivalent Injection Routers reached over
 * dedicated interposer wires, spreading the few-to-many reply traffic
 * across the mesh. CB placement and EIR grouping come from the design
 * flow (src/core).
 */

#include <algorithm>

#include "common/logging.hh"
#include "schemes/equinox_model.hh"
#include "schemes/registration.hh"
#include "schemes/scheme_registry.hh"
#include "sim/system.hh"

namespace eqx {

const EquiNoxDesign *
EquiNoxFamilyModel::placeCbs(const SystemConfig &cfg,
                             EquiNoxDesign &owned,
                             std::vector<Coord> &cbs) const
{
    const EquiNoxDesign *design = cfg.preDesign;
    if (!design) {
        DesignParams dp = cfg.design;
        dp.width = cfg.width;
        dp.height = cfg.height;
        dp.numCbs = cfg.numCbs;
        dp.seed = cfg.seed;
        // Score the design on the fabric the replies will ride.
        dp.topo = replyTopo(cfg);
        owned = buildEquiNoxDesign(dp);
        design = &owned;
    }
    eqx_assert(design->width == cfg.width &&
                   design->height == cfg.height,
               "EquiNox design size mismatch");
    cbs = design->cbs;
    return design;
}

void
EquiNoxFamilyModel::modReplySpec(const SchemeBuild &b,
                                 NetworkSpec &rep) const
{
    eqx_assert(b.design, "EquiNox scheme built without a design");
    rep.eirGroups = b.design->eirGroupsByNode();
}

void
EquiNoxFamilyModel::collectSchemeStats(
    const SchemeBuild &, const std::vector<std::unique_ptr<Network>> &nets,
    RunResult &out) const
{
    // Measured max per-injection-point load of the reply network (the
    // simulated check of the MCTS evaluator's maxLoad): max over every
    // NI injection buffer, local ports included. Only CB NIs inject
    // replies, so PE-side buffers contribute zero.
    if (nets.size() < 2)
        return;
    const Network &rep = *nets[1];
    for (NodeId n = 0; n < rep.topology().numNodes(); ++n) {
        const NetworkInterface &ni = rep.ni(n);
        for (int b = 0; b < ni.numInjBuffers(); ++b)
            out.maxEirLoadPackets =
                std::max(out.maxEirLoadPackets,
                         ni.injBuffer(b).packetsInjected);
    }
}

namespace {

class EquiNoxModel final : public EquiNoxFamilyModel
{
  public:
    const char *name() const override { return "EquiNox"; }

    const char *
    summary() const override
    {
        return "the paper's proposal: equivalent injection routers";
    }

    std::optional<Scheme>
    legacyEnum() const override
    {
        return Scheme::EquiNox;
    }
};

} // namespace

void
registerEquiNoxSchemes(SchemeRegistry &r)
{
    r.add(std::make_unique<EquiNoxModel>());
}

} // namespace eqx
