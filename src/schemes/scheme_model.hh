/**
 * @file
 * The pluggable scheme layer. A SchemeModel owns every per-scheme fact
 * the simulator needs: how to place the cache banks, which physical
 * networks to build, how endpoints inject into them, where packets
 * eject, and which scheme-specific results to report. System drives
 * exactly one model; new schemes are one translation unit that
 * registers a model with the SchemeRegistry — no simulator-core edits.
 */

#ifndef EQX_SCHEMES_SCHEME_MODEL_HH
#define EQX_SCHEMES_SCHEME_MODEL_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gpu/endpoint.hh"
#include "noc/network.hh"
#include "sim/scheme.hh"

namespace eqx {

struct RunResult;

/**
 * Everything a SchemeModel may consult while building or inspecting a
 * system: the configuration, the CB placement (computed once, shared
 * by every hook), and the EquiNox design when the scheme uses one.
 */
struct SchemeBuild
{
    const SystemConfig &cfg;
    const std::vector<Coord> &cbCoords; ///< CB placement (tile coords)
    const std::vector<NodeId> &cbNodes; ///< same CBs, as tile node ids
    const EquiNoxDesign *design; ///< non-null iff usesEquiNoxDesign()
};

/**
 * One compared NoC scheme. The identity block answers static questions
 * (registry keys, display name, topology facts); the build hooks are
 * invoked by System in declaration order: placeCbs, networkSpecs,
 * makeInjector (once per endpoint), wireSinks, collectSchemeStats.
 */
class SchemeModel
{
  public:
    virtual ~SchemeModel() = default;

    // ---- identity and facts ----

    /** Canonical registry key; doubles as the display name. */
    virtual const char *name() const = 0;

    /** Extra lookup keys (matched case-insensitively, like name()). */
    virtual std::vector<std::string> aliases() const { return {}; }

    /** One-line description for registry listings. */
    virtual const char *summary() const = 0;

    /** The legacy Scheme enum value, when the scheme has one. */
    virtual std::optional<Scheme> legacyEnum() const
    {
        return std::nullopt;
    }

    /** True when one shared physical network carries both classes. */
    virtual bool singleNetwork() const = 0;

    /** True when the scheme deploys an EquiNox design-flow result. */
    virtual bool usesEquiNoxDesign() const { return false; }

    /** Name of the network that carries replies (fault targeting). */
    virtual const char *replyNetName() const = 0;

    // ---- build hooks ----

    /**
     * Choose the CB placement. Returns the EquiNox design the scheme
     * deployed (storing a freshly built one in @p owned) or null for
     * schemes without one. Default: Diamond placement, null design.
     */
    virtual const EquiNoxDesign *placeCbs(const SystemConfig &cfg,
                                          EquiNoxDesign &owned,
                                          std::vector<Coord> &cbs) const;

    /** The physical networks to construct, in nets_[] order. */
    virtual std::vector<NetworkSpec>
    networkSpecs(const SchemeBuild &b) const = 0;

    /** Injector for the endpoint at @p node (CBs inject replies). */
    virtual std::unique_ptr<PacketInjector>
    makeInjector(const SchemeBuild &b,
                 const std::vector<std::unique_ptr<Network>> &nets,
                 NodeId node, bool for_reply) const = 0;

    /**
     * Attach the tile endpoints as network sinks. The default wires a
     * single network to every tile, or requests to CBs on nets[0] and
     * replies to PEs on nets[1..]. Overrides may allocate extra sinks
     * into @p owned_sinks (they must outlive the networks);
     * @p tile_sinks is the System-owned tile-id -> endpoint table.
     */
    virtual void
    wireSinks(const SchemeBuild &b,
              const std::vector<std::unique_ptr<Network>> &nets,
              const std::vector<PacketSink *> &tile_sinks,
              std::vector<std::unique_ptr<PacketSink>> &owned_sinks)
        const;

    /** Contribute scheme-specific RunResult fields. Default: none. */
    virtual void
    collectSchemeStats(const SchemeBuild &b,
                       const std::vector<std::unique_ptr<Network>> &nets,
                       RunResult &out) const;

  protected:
    /** The base NocParams every scheme starts a network spec from. */
    static NocParams baseParams(const SystemConfig &cfg,
                                const std::string &name);
};

/**
 * Common base of the separate request/reply schemes (SeparateBase,
 * DA2Mesh, MultiPort, the EquiNox family): nets[0] is the "request"
 * network under minimal-adaptive routing, nets[1..] carry replies.
 * Subclasses tune the specs via the mod hooks or replace the reply
 * side wholesale (DA2Mesh) by overriding networkSpecs.
 */
class SplitSchemeModel : public SchemeModel
{
  public:
    bool singleNetwork() const override { return false; }
    const char *replyNetName() const override { return "reply"; }

    std::vector<NetworkSpec>
    networkSpecs(const SchemeBuild &b) const override;

    std::unique_ptr<PacketInjector>
    makeInjector(const SchemeBuild &b,
                 const std::vector<std::unique_ptr<Network>> &nets,
                 NodeId node, bool for_reply) const override;

  protected:
    /** The shared request-network spec (before modRequestSpec). */
    NetworkSpec requestSpec(const SchemeBuild &b) const;

    /** Routing of the reply network (EquiNox-XY swaps this out). */
    virtual RoutingMode replyRouting() const
    {
        return RoutingMode::MinimalAdaptive;
    }

    /**
     * Topology of the reply network(s). The default honors the
     * cfg.replyTopo knob; the "-Torus"/"-CMesh" registry variants
     * force a kind so the variant name alone selects the fabric
     * (DESIGN.md §17).
     */
    virtual TopoSpec
    replyTopo(const SystemConfig &cfg) const
    {
        return cfg.replyTopo;
    }

    virtual void modRequestSpec(const SchemeBuild &, NetworkSpec &) const
    {}
    virtual void modReplySpec(const SchemeBuild &, NetworkSpec &) const
    {}
};

} // namespace eqx

#endif // EQX_SCHEMES_SCHEME_MODEL_HH
