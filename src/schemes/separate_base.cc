/**
 * @file
 * SeparateBase: split request/reply physical networks, both under
 * minimal-adaptive routing — the baseline the paper's few-to-many
 * injection analysis starts from.
 */

#include "schemes/registration.hh"
#include "schemes/scheme_registry.hh"

namespace eqx {

namespace {

class SeparateBaseModel final : public SplitSchemeModel
{
  public:
    const char *name() const override { return "SeparateBase"; }

    std::vector<std::string>
    aliases() const override
    {
        return {"separate"};
    }

    const char *
    summary() const override
    {
        return "split request/reply physical networks";
    }

    std::optional<Scheme>
    legacyEnum() const override
    {
        return Scheme::SeparateBase;
    }
};

} // namespace

void
registerSeparateBaseSchemes(SchemeRegistry &r)
{
    r.add(std::make_unique<SeparateBaseModel>());
}

} // namespace eqx
