/**
 * @file
 * MultiPort [Bakhoda et al.]: split networks where the CB routers gain
 * extra ejection ports on the request side and a multi-ported
 * injection NI on the reply side, instead of replicating the NI.
 */

#include "schemes/registration.hh"
#include "schemes/scheme_registry.hh"

namespace eqx {

namespace {

class MultiPortModel final : public SplitSchemeModel
{
  public:
    const char *name() const override { return "MultiPort"; }

    const char *
    summary() const override
    {
        return "multi-ported CB routers [Bakhoda et al.]";
    }

    std::optional<Scheme>
    legacyEnum() const override
    {
        return Scheme::MultiPort;
    }

  protected:
    void
    modRequestSpec(const SchemeBuild &b,
                   NetworkSpec &req) const override
    {
        for (NodeId n : b.cbNodes) {
            NodeMods m;
            m.localEjPorts = b.cfg.multiPortEjPorts;
            req.mods[n] = m;
        }
    }

    void
    modReplySpec(const SchemeBuild &b, NetworkSpec &rep) const override
    {
        for (NodeId n : b.cbNodes) {
            NodeMods m;
            m.kind = NiKind::MultiPort;
            m.localInjPorts = b.cfg.multiPortInjPorts;
            rep.mods[n] = m;
        }
    }
};

} // namespace

void
registerMultiPortSchemes(SchemeRegistry &r)
{
    r.add(std::make_unique<MultiPortModel>());
}

} // namespace eqx
