#include "schemes/scheme_model.hh"

#include "core/placement.hh"
#include "schemes/injectors.hh"

namespace eqx {

NocParams
SchemeModel::baseParams(const SystemConfig &cfg, const std::string &name)
{
    NocParams p;
    p.name = name;
    p.width = cfg.width;
    p.height = cfg.height;
    p.vcsPerPort = cfg.vcsPerPort;
    p.vcDepthFlits = cfg.vcDepthFlits;
    p.flitBits = cfg.flitBits;
    p.exhaustiveTick = cfg.exhaustiveNocTick;
    return p;
}

const EquiNoxDesign *
SchemeModel::placeCbs(const SystemConfig &cfg, EquiNoxDesign &,
                      std::vector<Coord> &cbs) const
{
    cbs = makePlacement(PlacementKind::Diamond, cfg.width, cfg.height,
                        cfg.numCbs);
    return nullptr;
}

void
SchemeModel::wireSinks(const SchemeBuild &b,
                       const std::vector<std::unique_ptr<Network>> &nets,
                       const std::vector<PacketSink *> &tile_sinks,
                       std::vector<std::unique_ptr<PacketSink>> &) const
{
    int num_nodes = b.cfg.width * b.cfg.height;
    std::vector<bool> is_cb(static_cast<std::size_t>(num_nodes), false);
    for (NodeId n : b.cbNodes)
        is_cb[static_cast<std::size_t>(n)] = true;

    for (NodeId n = 0; n < num_nodes; ++n) {
        PacketSink *s = tile_sinks[static_cast<std::size_t>(n)];
        if (singleNetwork()) {
            nets[0]->setSink(n, s);
        } else {
            // Requests eject at CBs; replies eject at PEs.
            if (is_cb[static_cast<std::size_t>(n)]) {
                nets[0]->setSink(n, s);
            } else {
                for (std::size_t i = 1; i < nets.size(); ++i)
                    nets[i]->setSink(n, s);
            }
        }
    }
}

void
SchemeModel::collectSchemeStats(
    const SchemeBuild &, const std::vector<std::unique_ptr<Network>> &,
    RunResult &) const
{}

NetworkSpec
SplitSchemeModel::requestSpec(const SchemeBuild &b) const
{
    NetworkSpec req;
    req.params = baseParams(b.cfg, "request");
    req.params.classes = {true, false};
    req.params.routing = RoutingMode::MinimalAdaptive;
    modRequestSpec(b, req);
    return req;
}

std::vector<NetworkSpec>
SplitSchemeModel::networkSpecs(const SchemeBuild &b) const
{
    std::vector<NetworkSpec> out;
    out.push_back(requestSpec(b));

    NetworkSpec rep;
    rep.params = baseParams(b.cfg, "reply");
    rep.params.classes = {false, true};
    rep.params.routing = replyRouting();
    rep.params.topo = replyTopo(b.cfg);
    if (rep.params.topo.kind == TopologyKind::Torus) {
        // Dateline discipline floor (DESIGN.md §17): the base VC count
        // keeps the paper's value on the mesh schemes, so lift only
        // the wrapped reply fabric to its deadlock-freedom minimum.
        int need = replyRouting() == RoutingMode::XY ? 2 : 3;
        if (rep.params.vcsPerPort < need)
            rep.params.vcsPerPort = need;
    }
    modReplySpec(b, rep);
    out.push_back(std::move(rep));
    return out;
}

std::unique_ptr<PacketInjector>
SplitSchemeModel::makeInjector(
    const SchemeBuild &, const std::vector<std::unique_ptr<Network>> &nets,
    NodeId node, bool for_reply) const
{
    return std::make_unique<DirectInjector>(
        nets[for_reply ? 1 : 0].get(), node);
}

} // namespace eqx
