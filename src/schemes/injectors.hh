/**
 * @file
 * Injectors shared by several scheme models. Scheme-private injectors
 * (the CMesh overlay chooser, say) live in their scheme's TU instead.
 */

#ifndef EQX_SCHEMES_INJECTORS_HH
#define EQX_SCHEMES_INJECTORS_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "gpu/endpoint.hh"
#include "noc/network.hh"

namespace eqx {

/** Injects at a fixed node of a fixed network. */
class DirectInjector : public PacketInjector
{
  public:
    DirectInjector(Network *net, NodeId node) : net_(net), node_(node) {}

    bool
    tryInject(const PacketPtr &pkt) override
    {
        return net_->inject(node_, pkt);
    }

  private:
    Network *net_;
    NodeId node_;
};

/** Stripes reply packets across the DA2Mesh subnets by destination. */
class SubnetInjector : public PacketInjector
{
  public:
    SubnetInjector(std::vector<Network *> subnets, NodeId node)
        : subnets_(std::move(subnets)), node_(node)
    {}

    bool
    tryInject(const PacketPtr &pkt) override
    {
        auto idx = static_cast<std::size_t>(pkt->dst) % subnets_.size();
        return subnets_[idx]->inject(node_, pkt);
    }

  private:
    std::vector<Network *> subnets_;
    NodeId node_;
};

} // namespace eqx

#endif // EQX_SCHEMES_INJECTORS_HH
