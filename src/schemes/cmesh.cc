/**
 * @file
 * Interposer-CMesh [Jerger et al.]: the shared mesh plus a 2x2
 * concentrated overlay on the interposer with wide flits. Distant
 * traffic rides the overlay (entering and leaving through 4-ported
 * concentration NIs); near traffic, or traffic that finds the overlay
 * entry full, takes the mesh.
 */

#include "common/logging.hh"
#include "schemes/registration.hh"
#include "schemes/scheme_registry.hh"

namespace eqx {

namespace {

/** CMesh tile -> overlay node mapping (2x2 concentration). */
struct CmeshMap
{
    int tileW;
    int cmW;

    NodeId
    overlayNode(NodeId tile) const
    {
        int x = static_cast<int>(tile) % tileW;
        int y = static_cast<int>(tile) / tileW;
        return static_cast<NodeId>((y / 2) * cmW + x / 2);
    }
};

/**
 * Interposer-CMesh injection: distant destinations ride the overlay,
 * near ones (or an overlay-full fallback) take the mesh.
 */
class OverlayInjector : public PacketInjector
{
  public:
    OverlayInjector(Network *mesh, Network *overlay, NodeId node,
                    CmeshMap map, int min_hops)
        : mesh_(mesh), overlay_(overlay), node_(node), map_(map),
          minHops_(min_hops)
    {}

    bool
    tryInject(const PacketPtr &pkt) override
    {
        const Topology &t = mesh_->topology();
        int dist = t.distance(t.coord(node_), t.coord(pkt->dst));
        NodeId entry = map_.overlayNode(node_);
        NodeId exit = map_.overlayNode(pkt->dst);
        if (dist >= minHops_ && entry != exit) {
            NodeId tile_dst = pkt->dst;
            pkt->finalDst = tile_dst;
            pkt->dst = exit;
            if (overlay_->inject(entry, pkt))
                return true;
            pkt->dst = tile_dst; // fall back to the mesh
            pkt->finalDst = kInvalidNode;
        }
        return mesh_->inject(node_, pkt);
    }

  private:
    Network *mesh_;
    Network *overlay_;
    NodeId node_;
    CmeshMap map_;
    int minHops_;
};

/** Overlay exit: hands packets to the endpoint of their finalDst tile. */
class CmeshExitSink : public PacketSink
{
  public:
    explicit CmeshExitSink(const std::vector<PacketSink *> *tile_sinks)
        : tileSinks_(tile_sinks)
    {}

    bool
    canAccept(const PacketPtr &pkt) override
    {
        return sinkOf(pkt)->canAccept(pkt);
    }

    void
    accept(const PacketPtr &pkt, Cycle core_now) override
    {
        PacketSink *s = sinkOf(pkt);
        // Restore the tile-namespace destination for the endpoint.
        pkt->dst = pkt->finalDst;
        s->accept(pkt, core_now);
    }

  private:
    PacketSink *
    sinkOf(const PacketPtr &pkt) const
    {
        eqx_assert(pkt->finalDst != kInvalidNode,
                   "overlay packet without finalDst");
        PacketSink *s =
            (*tileSinks_)[static_cast<std::size_t>(pkt->finalDst)];
        eqx_assert(s, "overlay packet for a tile without an endpoint");
        return s;
    }

    const std::vector<PacketSink *> *tileSinks_;
};

class InterposerCMeshModel final : public SchemeModel
{
  public:
    const char *name() const override { return "Interposer-CMesh"; }

    std::vector<std::string>
    aliases() const override
    {
        return {"cmesh"};
    }

    const char *
    summary() const override
    {
        return "mesh + concentrated interposer overlay [Jerger et al.]";
    }

    std::optional<Scheme>
    legacyEnum() const override
    {
        return Scheme::InterposerCMesh;
    }

    bool singleNetwork() const override { return true; }
    const char *replyNetName() const override { return "single"; }

    std::vector<NetworkSpec>
    networkSpecs(const SchemeBuild &b) const override
    {
        const SystemConfig &cfg = b.cfg;
        std::vector<NetworkSpec> out;

        NetworkSpec mesh;
        mesh.params = baseParams(cfg, "single");
        mesh.params.classVcs = true;
        mesh.params.coherenceVcs = cfg.traffic.coherenceVcs;
        mesh.params.routing = RoutingMode::XY;
        out.push_back(std::move(mesh));

        NetworkSpec overlay;
        overlay.params = baseParams(cfg, "cmesh");
        overlay.params.width = (cfg.width + 1) / 2;
        overlay.params.height = (cfg.height + 1) / 2;
        overlay.params.flitBits = cfg.cmeshFlitBits;
        overlay.params.classVcs = true;
        overlay.params.coherenceVcs = cfg.traffic.coherenceVcs;
        overlay.params.routing = RoutingMode::XY;
        overlay.params.geoLinksInterposer = true;
        for (NodeId n = 0; n < overlay.params.numNodes(); ++n) {
            NodeMods m;
            m.kind = NiKind::MultiPort;
            m.localInjPorts = 4; // one per concentrated tile
            m.localEjPorts = 4;
            overlay.mods[n] = m;
        }
        out.push_back(std::move(overlay));
        return out;
    }

    std::unique_ptr<PacketInjector>
    makeInjector(const SchemeBuild &b,
                 const std::vector<std::unique_ptr<Network>> &nets,
                 NodeId node, bool) const override
    {
        CmeshMap cmap{b.cfg.width, (b.cfg.width + 1) / 2};
        return std::make_unique<OverlayInjector>(
            nets[0].get(), nets[1].get(), node, cmap,
            b.cfg.cmeshMinHops);
    }

    void
    wireSinks(const SchemeBuild &b,
              const std::vector<std::unique_ptr<Network>> &nets,
              const std::vector<PacketSink *> &tile_sinks,
              std::vector<std::unique_ptr<PacketSink>> &owned_sinks)
        const override
    {
        SchemeModel::wireSinks(b, nets, tile_sinks, owned_sinks);
        auto sink = std::make_unique<CmeshExitSink>(&tile_sinks);
        for (NodeId n = 0; n < nets[1]->topology().numNodes(); ++n)
            nets[1]->setSink(n, sink.get());
        owned_sinks.push_back(std::move(sink));
    }
};

} // namespace

void
registerCmeshSchemes(SchemeRegistry &r)
{
    r.add(std::make_unique<InterposerCMeshModel>());
}

} // namespace eqx
