#include "schemes/scheme_registry.hh"

#include <cctype>

#include "common/logging.hh"
#include "schemes/registration.hh"

namespace eqx {

namespace {

std::string
lowered(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace

SchemeRegistry &
SchemeRegistry::instance()
{
    static SchemeRegistry reg = [] {
        SchemeRegistry r;
        registerSingleSchemes(r);
        registerCmeshSchemes(r);
        registerSeparateBaseSchemes(r);
        registerDa2MeshSchemes(r);
        registerMultiPortSchemes(r);
        registerEquiNoxSchemes(r);
        registerEquiNoxXySchemes(r);
        registerTopologyVariantSchemes(r);
        return r;
    }();
    return reg;
}

bool
SchemeRegistry::add(std::unique_ptr<SchemeModel> model)
{
    std::vector<std::string> keys;
    keys.push_back(lowered(model->name()));
    for (const auto &a : model->aliases())
        keys.push_back(lowered(a));
    for (const auto &k : keys)
        if (byKey_.count(k))
            return false;
    if (auto e = model->legacyEnum(); e && byEnum_.count(*e))
        return false;

    const SchemeModel *m = model.get();
    owned_.push_back(std::move(model));
    order_.push_back(m);
    for (const auto &k : keys)
        byKey_[k] = m;
    if (auto e = m->legacyEnum())
        byEnum_[*e] = m;
    return true;
}

const SchemeModel *
SchemeRegistry::find(std::string_view key) const
{
    auto it = byKey_.find(lowered(key));
    return it == byKey_.end() ? nullptr : it->second;
}

const SchemeModel &
SchemeRegistry::byName(std::string_view key) const
{
    const SchemeModel *m = find(key);
    if (!m)
        eqx_fatal("unknown scheme '", std::string(key),
                  "'; registered schemes: ", keyList());
    return *m;
}

const SchemeModel &
SchemeRegistry::byEnum(Scheme s) const
{
    auto it = byEnum_.find(s);
    if (it == byEnum_.end())
        eqx_fatal("no scheme model registered for enum value ",
                  static_cast<int>(s));
    return *it->second;
}

std::vector<std::string>
SchemeRegistry::names() const
{
    std::vector<std::string> out;
    for (const SchemeModel *m : order_)
        out.push_back(m->name());
    return out;
}

std::string
SchemeRegistry::keyList() const
{
    std::string out;
    for (const SchemeModel *m : order_) {
        if (!out.empty())
            out += ", ";
        out += m->name();
    }
    return out;
}

std::vector<std::string>
paperSchemeNames()
{
    std::vector<std::string> out;
    for (const SchemeModel *m : SchemeRegistry::instance().models())
        if (m->legacyEnum())
            out.push_back(m->name());
    return out;
}

std::vector<std::string>
allSchemeNames()
{
    return SchemeRegistry::instance().names();
}

// ---- legacy sim/scheme.hh helpers, now registry lookups ----

const char *
schemeName(Scheme s)
{
    return SchemeRegistry::instance().byEnum(s).name();
}

std::vector<Scheme>
allSchemes()
{
    std::vector<Scheme> out;
    for (const SchemeModel *m : SchemeRegistry::instance().models())
        if (auto e = m->legacyEnum())
            out.push_back(*e);
    return out;
}

bool
isSingleNetwork(Scheme s)
{
    return SchemeRegistry::instance().byEnum(s).singleNetwork();
}

} // namespace eqx
