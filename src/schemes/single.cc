/**
 * @file
 * SingleBase and VC-Mono: one shared physical XY network carries both
 * packet classes on class-partitioned VCs; VC-Mono additionally lets a
 * worm monopolize its VC end to end [Jang et al.].
 */

#include "schemes/injectors.hh"
#include "schemes/registration.hh"
#include "schemes/scheme_registry.hh"

namespace eqx {

namespace {

class SingleNetModel : public SchemeModel
{
  public:
    explicit SingleNetModel(bool vc_mono) : vcMono_(vc_mono) {}

    const char *
    name() const override
    {
        return vcMono_ ? "VC-Mono" : "SingleBase";
    }

    std::vector<std::string>
    aliases() const override
    {
        if (vcMono_)
            return {"vcmono"};
        return {"single"};
    }

    const char *
    summary() const override
    {
        return vcMono_
                   ? "single network + VC monopolization [Jang et al.]"
                   : "one shared physical network, Diamond placement";
    }

    std::optional<Scheme>
    legacyEnum() const override
    {
        return vcMono_ ? Scheme::VcMono : Scheme::SingleBase;
    }

    bool singleNetwork() const override { return true; }
    const char *replyNetName() const override { return "single"; }

    std::vector<NetworkSpec>
    networkSpecs(const SchemeBuild &b) const override
    {
        NetworkSpec spec;
        spec.params = baseParams(b.cfg, "single");
        spec.params.classVcs = true;
        spec.params.coherenceVcs = b.cfg.traffic.coherenceVcs;
        spec.params.routing = RoutingMode::XY;
        spec.params.vcMono = vcMono_;
        std::vector<NetworkSpec> out;
        out.push_back(std::move(spec));
        return out;
    }

    std::unique_ptr<PacketInjector>
    makeInjector(const SchemeBuild &,
                 const std::vector<std::unique_ptr<Network>> &nets,
                 NodeId node, bool) const override
    {
        return std::make_unique<DirectInjector>(nets[0].get(), node);
    }

  private:
    bool vcMono_;
};

} // namespace

void
registerSingleSchemes(SchemeRegistry &r)
{
    r.add(std::make_unique<SingleNetModel>(/*vc_mono=*/false));
    r.add(std::make_unique<SingleNetModel>(/*vc_mono=*/true));
}

} // namespace eqx
