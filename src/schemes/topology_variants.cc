/**
 * @file
 * Topology-variant schemes (DESIGN.md §17): stock scheme models with
 * the reply fabric swapped by name. EquiNox-Torus rides the full
 * design flow — the EIR search scores on wrapped distances — and
 * runs its reply network as a dateline-VC torus; SeparateBase-CMesh
 * concentrates the reply mesh (one router per c x c tile block, c
 * from the replyTopo knob). Like EquiNox-XY, each variant is pure
 * registry surface: this translation unit plus its hook, zero
 * simulator edits.
 */

#include "schemes/equinox_model.hh"
#include "schemes/registration.hh"
#include "schemes/scheme_registry.hh"

namespace eqx {

namespace {

class EquiNoxTorusModel final : public EquiNoxFamilyModel
{
  public:
    const char *name() const override { return "EquiNox-Torus"; }

    std::vector<std::string>
    aliases() const override
    {
        return {"equinoxtorus"};
    }

    const char *
    summary() const override
    {
        return "EquiNox with a torus reply net (dateline escape VCs)";
    }

    // No legacyEnum(): this variant exists only under its string key.

  protected:
    TopoSpec
    replyTopo(const SystemConfig &) const override
    {
        return {TopologyKind::Torus, 1};
    }
};

class SeparateBaseCMeshModel final : public SplitSchemeModel
{
  public:
    const char *name() const override { return "SeparateBase-CMesh"; }

    std::vector<std::string>
    aliases() const override
    {
        return {"separatecmesh"};
    }

    const char *
    summary() const override
    {
        return "SeparateBase with a concentrated-mesh reply net";
    }

  protected:
    TopoSpec
    replyTopo(const SystemConfig &cfg) const override
    {
        // Force the kind, keep the concentration tunable.
        return {TopologyKind::CMesh, cfg.replyTopo.concentration};
    }
};

} // namespace

void
registerTopologyVariantSchemes(SchemeRegistry &r)
{
    r.add(std::make_unique<EquiNoxTorusModel>());
    r.add(std::make_unique<SeparateBaseCMeshModel>());
}

} // namespace eqx
