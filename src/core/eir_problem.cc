#include "core/eir_problem.hh"

#include <algorithm>
#include <array>
#include <set>
#include <string>

#include "common/logging.hh"
#include "core/hotzone.hh"

namespace eqx {

int
directionOctant(const Coord &from, const Coord &to)
{
    int dx = to.x - from.x;
    int dy = to.y - from.y;
    eqx_assert(dx != 0 || dy != 0, "octant of identical tiles undefined");
    // E=0, NE=1, N=2, NW=3, W=4, SW=5, S=6, SE=7 (y grows south).
    if (dy == 0)
        return dx > 0 ? 0 : 4;
    if (dx == 0)
        return dy < 0 ? 2 : 6;
    if (dx > 0)
        return dy < 0 ? 1 : 7;
    return dy < 0 ? 3 : 5;
}

EirProblem::EirProblem(int width, int height, std::vector<Coord> cbs,
                       int max_hops, int max_per_group,
                       const TopoSpec &topo)
    : w_(width), h_(height), topo_(makeTopology(width, height, topo)),
      cbs_(std::move(cbs)), maxHops_(max_hops),
      maxPerGroup_(max_per_group)
{
    eqx_assert(maxHops_ >= 2, "EIRs must bypass the hot zone (>= 2 hops)");
    eqx_assert(maxPerGroup_ >= 1 && maxPerGroup_ <= 8,
               "group size must be within 1..8");
    candidates_.resize(cbs_.size());
    for (int i = 0; i < numCbs(); ++i) {
        for (int y = 0; y < h_; ++y) {
            for (int x = 0; x < w_; ++x) {
                Coord c{x, y};
                if (legalEir(i, c))
                    candidates_[static_cast<std::size_t>(i)].push_back(c);
            }
        }
    }
}

bool
EirProblem::legalEir(int cb_idx, const Coord &c) const
{
    const Coord &cb = cbs_[static_cast<std::size_t>(cb_idx)];
    int d = distance(cb, c);
    if (d < 2 || d > maxHops_)
        return false;
    // Never on a CB tile; never inside the *own* CB's DAZ/CAZ hot zone
    // (the EIR must bypass it). Sitting in another CB's hot zone is
    // legal but discouraged by the evaluation's contention-aware load
    // metric (paper Section 3.2.4 lists it as a soft consideration).
    if (chebyshev(cb, c) <= 1)
        return false;
    for (const auto &other : cbs_)
        if (other == c)
            return false;
    return true;
}

const std::vector<Coord> &
EirProblem::candidates(int cb_idx) const
{
    return candidates_[static_cast<std::size_t>(cb_idx)];
}

std::vector<std::vector<Coord>>
EirProblem::groupsFor(int cb_idx, const std::vector<Coord> &taken) const
{
    TileMask mask(w_, h_);
    for (const auto &t : taken)
        mask.add(t);
    return groupsFor(cb_idx, mask);
}

std::vector<std::vector<Coord>>
EirProblem::groupsFor(int cb_idx, const TileMask &taken) const
{
    const Coord &cb = cbs_[static_cast<std::size_t>(cb_idx)];

    // Bucket the free candidates by direction octant; axes first so
    // that enumeration favours the axis placements the paper's design
    // converges to.
    std::vector<std::vector<Coord>> byOctant(8);
    for (const auto &c : candidates(cb_idx)) {
        if (taken.test(c))
            continue;
        byOctant[static_cast<std::size_t>(directionOctant(cb, c))]
            .push_back(c);
    }
    const std::array<int, 8> octant_order{{0, 2, 4, 6, 1, 3, 5, 7}};

    std::vector<std::vector<Coord>> groups;
    constexpr std::size_t kMaxGroups = 8192;
    std::vector<Coord> cur;

    // Depth-first over octants in preference order; at each octant
    // either skip it or take one of its candidates.
    auto rec = [&](auto &&self, int oi) -> void {
        if (groups.size() >= kMaxGroups)
            return;
        if (oi == 8) {
            if (!cur.empty())
                groups.push_back(cur);
            return;
        }
        int oct = octant_order[static_cast<std::size_t>(oi)];
        if (static_cast<int>(cur.size()) < maxPerGroup_) {
            for (const auto &c :
                 byOctant[static_cast<std::size_t>(oct)]) {
                cur.push_back(c);
                self(self, oi + 1);
                cur.pop_back();
                if (groups.size() >= kMaxGroups)
                    return;
            }
        }
        self(self, oi + 1); // skip this octant
    };
    rec(rec, 0);

    // Larger groups first: more injection equivalents is the point.
    std::stable_sort(groups.begin(), groups.end(),
                     [](const auto &a, const auto &b) {
                         return a.size() > b.size();
                     });
    groups.emplace_back(); // the empty fallback group
    return groups;
}

bool
EirProblem::valid(const EirSelection &sel, std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (static_cast<int>(sel.size()) != numCbs())
        return fail("selection size != number of CBs");
    std::set<Coord> seen;
    for (int i = 0; i < numCbs(); ++i) {
        const auto &group = sel[static_cast<std::size_t>(i)];
        if (static_cast<int>(group.size()) > maxPerGroup_)
            return fail("group too large");
        std::set<int> octs;
        for (const auto &e : group) {
            if (!legalEir(i, e))
                return fail("illegal EIR tile");
            if (!seen.insert(e).second)
                return fail("EIR shared between CBs");
            int oct = directionOctant(cbs_[static_cast<std::size_t>(i)],
                                      e);
            if (!octs.insert(oct).second)
                return fail("two EIRs in the same direction octant");
        }
    }
    return true;
}

LinkPlan
EirProblem::linkPlan(const EirSelection &sel, int width_bits) const
{
    LinkPlan plan(/*one_cycle_reach_hops=*/2);
    for (int i = 0;
         i < std::min(numCbs(), static_cast<int>(sel.size())); ++i) {
        for (const auto &e : sel[static_cast<std::size_t>(i)]) {
            InterposerLink link;
            link.src = cbs_[static_cast<std::size_t>(i)];
            link.dst = e;
            link.widthBits = width_bits;
            link.bidirectional = false;
            plan.add(link);
        }
    }
    return plan;
}

} // namespace eqx
