#include "core/placement.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace eqx {

const char *
placementName(PlacementKind k)
{
    switch (k) {
      case PlacementKind::Top:      return "Top";
      case PlacementKind::Side:     return "Side";
      case PlacementKind::Diagonal: return "Diagonal";
      case PlacementKind::Diamond:  return "Diamond";
      case PlacementKind::NQueen:   return "NQueen";
    }
    return "?";
}

namespace {

/**
 * The diamond pattern used here is a permutation layout (no shared
 * rows/columns) containing diagonally adjacent CB pairs — the two
 * properties the paper's analysis of Diamond relies on. The base
 * pattern is for 8 CBs and is scaled to other mesh sizes.
 */
constexpr int kDiamondX8[8] = {3, 5, 7, 6, 1, 0, 2, 4};

} // namespace

std::vector<Coord>
makePlacement(PlacementKind kind, int width, int height, int num_cbs)
{
    eqx_assert(num_cbs >= 1, "need at least one CB");
    eqx_assert(num_cbs <= width * height, "more CBs than tiles");
    std::vector<Coord> cbs;
    cbs.reserve(static_cast<std::size_t>(num_cbs));

    switch (kind) {
      case PlacementKind::Top:
        for (int k = 0; k < num_cbs; ++k) {
            int x = (2 * k + 1) * width / (2 * num_cbs);
            cbs.push_back({x, 0});
        }
        break;
      case PlacementKind::Side: {
        int left = (num_cbs + 1) / 2;
        int right = num_cbs - left;
        for (int k = 0; k < left; ++k)
            cbs.push_back({0, (2 * k + 1) * height / (2 * left)});
        for (int k = 0; k < right; ++k)
            cbs.push_back({width - 1,
                           (2 * k + 1) * height / (2 * right)});
        break;
      }
      case PlacementKind::Diagonal: {
        int n = std::min(width, height);
        for (int k = 0; k < num_cbs; ++k) {
            int d = (2 * k + 1) * n / (2 * num_cbs);
            cbs.push_back({d, d});
        }
        break;
      }
      case PlacementKind::Diamond: {
        eqx_assert(num_cbs <= 8,
                   "diamond pattern defined for up to 8 CBs");
        for (int k = 0; k < num_cbs; ++k) {
            int y = (2 * k + 1) * height / (2 * num_cbs);
            // Scale the 8-wide base pattern to this mesh width. The
            // row spacing above keeps rows distinct for num_cbs <= h.
            int x = kDiamondX8[k % 8] * width / 8;
            cbs.push_back({x, y});
        }
        break;
      }
      case PlacementKind::NQueen:
        eqx_fatal("NQueen placements come from the solver in nqueen.hh");
    }

    // Sanity: all distinct and in bounds.
    std::set<Coord> uniq(cbs.begin(), cbs.end());
    eqx_assert(uniq.size() == cbs.size(), "placement has duplicates");
    for (const auto &c : cbs)
        eqx_assert(c.x >= 0 && c.x < width && c.y >= 0 && c.y < height,
                   "placement out of bounds");
    return cbs;
}

bool
isPermutationPlacement(const std::vector<Coord> &cbs)
{
    std::set<int> xs, ys;
    for (const auto &c : cbs) {
        if (!xs.insert(c.x).second || !ys.insert(c.y).second)
            return false;
    }
    return true;
}

bool
isDiagonalFree(const std::vector<Coord> &cbs)
{
    std::set<int> sum, diff;
    for (const auto &c : cbs) {
        if (!sum.insert(c.x + c.y).second ||
            !diff.insert(c.x - c.y).second)
            return false;
    }
    return true;
}

bool
hasDiagonalAdjacency(const std::vector<Coord> &cbs)
{
    for (std::size_t i = 0; i < cbs.size(); ++i)
        for (std::size_t j = i + 1; j < cbs.size(); ++j)
            if (chebyshev(cbs[i], cbs[j]) == 1 &&
                cbs[i].x != cbs[j].x && cbs[i].y != cbs[j].y)
                return true;
    return false;
}

std::string
placementAscii(const std::vector<Coord> &cbs, int width, int height)
{
    std::vector<char> grid(static_cast<std::size_t>(width * height), '.');
    for (const auto &c : cbs)
        grid[static_cast<std::size_t>(c.y * width + c.x)] = 'C';
    std::ostringstream os;
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x)
            os << grid[static_cast<std::size_t>(y * width + x)] << ' ';
        os << '\n';
    }
    return os.str();
}

} // namespace eqx
