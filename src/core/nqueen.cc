#include "core/nqueen.hh"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/logging.hh"
#include "core/hotzone.hh"

namespace eqx {

namespace {

/**
 * Generic backtracking enumerator. The column order tried at each row
 * is given by col_order (identity = lexicographic).
 */
void
backtrack(int n, int row, std::vector<int> &cols,
          std::vector<bool> &used_col, std::vector<bool> &used_sum,
          std::vector<bool> &used_diff, const std::vector<int> &col_order,
          std::vector<std::vector<Coord>> &out, std::size_t max_solutions)
{
    if (out.size() >= max_solutions)
        return;
    if (row == n) {
        std::vector<Coord> sol;
        sol.reserve(static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r)
            sol.push_back({cols[static_cast<std::size_t>(r)], r});
        out.push_back(std::move(sol));
        return;
    }
    for (int c : col_order) {
        int sum = row + c;
        int diff = row - c + n - 1;
        if (used_col[static_cast<std::size_t>(c)] ||
            used_sum[static_cast<std::size_t>(sum)] ||
            used_diff[static_cast<std::size_t>(diff)])
            continue;
        used_col[static_cast<std::size_t>(c)] = true;
        used_sum[static_cast<std::size_t>(sum)] = true;
        used_diff[static_cast<std::size_t>(diff)] = true;
        cols[static_cast<std::size_t>(row)] = c;
        backtrack(n, row + 1, cols, used_col, used_sum, used_diff,
                  col_order, out, max_solutions);
        used_col[static_cast<std::size_t>(c)] = false;
        used_sum[static_cast<std::size_t>(sum)] = false;
        used_diff[static_cast<std::size_t>(diff)] = false;
        if (out.size() >= max_solutions)
            return;
    }
}

std::vector<std::vector<Coord>>
enumerate(int n, std::size_t max_solutions,
          const std::vector<int> &col_order)
{
    std::vector<std::vector<Coord>> out;
    std::vector<int> cols(static_cast<std::size_t>(n), -1);
    std::vector<bool> used_col(static_cast<std::size_t>(n), false);
    std::vector<bool> used_sum(static_cast<std::size_t>(2 * n - 1), false);
    std::vector<bool> used_diff(static_cast<std::size_t>(2 * n - 1), false);
    backtrack(n, 0, cols, used_col, used_sum, used_diff, col_order, out,
              max_solutions);
    return out;
}

} // namespace

std::vector<std::vector<Coord>>
solveNQueens(int n, std::size_t max_solutions)
{
    eqx_assert(n >= 1, "board size must be positive");
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    return enumerate(n, max_solutions, order);
}

std::size_t
countNQueenSolutions(int n, std::size_t cap)
{
    return solveNQueens(n, cap).size();
}

std::vector<std::vector<Coord>>
sampleNQueens(int n, std::size_t count, Rng &rng)
{
    std::set<std::vector<int>> seen;
    std::vector<std::vector<Coord>> out;
    // Each attempt shuffles the column preference order and takes the
    // first solution found; retry on duplicates.
    std::size_t attempts = 0;
    while (out.size() < count && attempts < count * 20 + 50) {
        ++attempts;
        std::vector<int> order(static_cast<std::size_t>(n));
        std::iota(order.begin(), order.end(), 0);
        rng.shuffle(order);
        auto sols = enumerate(n, 1, order);
        if (sols.empty())
            continue;
        std::vector<int> key;
        key.reserve(sols[0].size());
        for (const auto &c : sols[0])
            key.push_back(c.x);
        if (seen.insert(key).second)
            out.push_back(std::move(sols[0]));
    }
    return out;
}

namespace {

/**
 * Greedy trim: remove queens one at a time, each time deleting the one
 * whose removal yields the lowest hot-zone penalty.
 */
std::vector<Coord>
greedyTrim(std::vector<Coord> cbs, int num_cbs, int n)
{
    while (static_cast<int>(cbs.size()) > num_cbs) {
        int best_idx = -1;
        int best_penalty = 0;
        for (std::size_t i = 0; i < cbs.size(); ++i) {
            std::vector<Coord> trial;
            trial.reserve(cbs.size() - 1);
            for (std::size_t j = 0; j < cbs.size(); ++j)
                if (j != i)
                    trial.push_back(cbs[j]);
            int p = placementPenalty(trial, n, n);
            if (best_idx < 0 || p < best_penalty) {
                best_idx = static_cast<int>(i);
                best_penalty = p;
            }
        }
        cbs.erase(cbs.begin() + best_idx);
    }
    return cbs;
}

} // namespace

ScoredPlacement
bestNQueenPlacement(int n, int num_cbs, Rng &rng, std::size_t sample_count)
{
    eqx_assert(num_cbs <= n, "use knightPlacement when num_cbs > n");
    std::vector<std::vector<Coord>> sols;
    if (n <= 8)
        sols = solveNQueens(n, 100000); // 8x8: all 92
    else
        sols = sampleNQueens(n, sample_count, rng);
    eqx_assert(!sols.empty(), "no N-Queen solutions found");

    ScoredPlacement best;
    bool first = true;
    for (auto &sol : sols) {
        std::vector<Coord> cbs =
            static_cast<int>(sol.size()) == num_cbs
                ? sol
                : greedyTrim(sol, num_cbs, n);
        int p = placementPenalty(cbs, n, n);
        if (first || p < best.penalty) {
            best.cbs = std::move(cbs);
            best.penalty = p;
            first = false;
        }
    }
    return best;
}

std::vector<Coord>
knightPlacement(int n, int num_cbs)
{
    eqx_assert(num_cbs <= n * n, "more CBs than tiles");
    // Walk the board in knight moves (+1 col, +2 rows), wrapping; when
    // a full tour column is exhausted shift the start to an unused
    // tile. This yields the paper's knight-move shape with minimal
    // row/column/diagonal sharing.
    std::vector<Coord> cbs;
    std::set<Coord> used;
    Coord cur{0, 0};
    while (static_cast<int>(cbs.size()) < num_cbs) {
        if (!used.count(cur)) {
            cbs.push_back(cur);
            used.insert(cur);
        }
        Coord next{(cur.x + 1) % n, (cur.y + 2) % n};
        if (used.count(next)) {
            // Find the first unused tile scanning row-major.
            bool found = false;
            for (int y = 0; y < n && !found; ++y) {
                for (int x = 0; x < n && !found; ++x) {
                    Coord c{x, y};
                    if (!used.count(c)) {
                        next = c;
                        found = true;
                    }
                }
            }
            if (!found)
                break;
        }
        cur = next;
    }
    return cbs;
}

} // namespace eqx
