/**
 * @file
 * The EquiNox design flow — the paper's end-to-end contribution:
 * contention-aware N-Queen CB placement (scored by the hot-zone
 * policy), MCTS-driven EIR group selection, and the resulting
 * interposer link plan with its physical-viability report.
 */

#ifndef EQX_CORE_DESIGN_FLOW_HH
#define EQX_CORE_DESIGN_FLOW_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "noc/topology.hh"
#include "core/eir_problem.hh"
#include "core/evaluation.hh"
#include "core/search.hh"
#include "interposer/link_plan.hh"

namespace eqx {

/** Which search algorithm drives EIR selection. */
enum class SearchMethod : std::uint8_t
{
    Mcts,
    Greedy,
    Random,
    Anneal,
    Genetic,
};

const char *searchMethodName(SearchMethod m);

/** Inputs of the design flow. */
struct DesignParams
{
    int width = 8;
    int height = 8;
    int numCbs = 8;
    int maxHops = 3;          ///< EIR distance limit (paper: 3)
    int maxPerGroup = 4;      ///< EIRs per CB (paper: 4)
    /**
     * Reply-fabric topology the design is scored against (DESIGN.md
     * §17): hop distances in the evaluator come from
     * Topology::distance, so search scores on a torus account for the
     * wrap links. Mesh (default) reproduces the paper byte-identically.
     */
    TopoSpec topo;
    SearchMethod method = SearchMethod::Mcts;
    std::uint64_t seed = 1;
    MctsParams mcts;
    EvalWeights weights;
    /** Best-response polish passes after the global search (0 = off). */
    int polishPasses = 4;
    /** Override the placement instead of running N-Queen + scoring. */
    std::vector<Coord> fixedPlacement;
};

/** A complete EquiNox design. */
struct EquiNoxDesign
{
    int width = 0;
    int height = 0;
    std::vector<Coord> cbs;        ///< the chosen CB placement
    int placementPenalty = 0;      ///< hot-zone score of the placement
    EirSelection eirGroups;        ///< per-CB EIR tiles
    EvalBreakdown eval;            ///< the 4-metric evaluation
    LinkPlan plan{2};              ///< CB -> EIR interposer links
    RdlReport rdl;                 ///< crossings, layers, ubumps, ...
    std::uint64_t evaluations = 0; ///< search cost

    /** Total number of EIRs across all groups. */
    int numEirs() const;

    /** CB node id -> EIR node ids, in the form NetworkSpec consumes. */
    std::map<NodeId, std::vector<NodeId>> eirGroupsByNode() const;

    /** CB node ids (row-major). */
    std::vector<NodeId> cbNodes() const;

    /** ASCII rendering of the design (Fig. 7 style). */
    std::string ascii() const;
};

/** Run the full flow. */
EquiNoxDesign buildEquiNoxDesign(const DesignParams &params);

} // namespace eqx

#endif // EQX_CORE_DESIGN_FLOW_HH
