/**
 * @file
 * Monte Carlo Tree Search for EIR selection (paper Section 4.3 and
 * Figure 6): iterative selection / expansion / simulation /
 * backpropagation with UCB, one tree level per CB group.
 *
 * The search threads one EvalAccumulator down the tree — groups are
 * pushed on descend/expansion/rollout and popped on backtrack — so a
 * full rollout costs O(changed CBs) evaluator work instead of an
 * O(decided x W x H) from-scratch rebuild, and the accumulator's
 * taken-mask replaces the former O(depth^2) takenOf() flattening.
 * Scores are bit-identical to the from-scratch evaluator, so the
 * selected designs are unchanged (see DESIGN.md §15).
 */

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "core/eval_accumulator.hh"
#include "core/search.hh"

namespace eqx {

namespace {

struct Node
{
    std::vector<Coord> group;      ///< the group this node adds
    int depth = 0;                 ///< CBs decided including this node
    double totalReward = 0.0;
    int visits = 0;
    Node *parent = nullptr;
    std::vector<std::unique_ptr<Node>> children;
    std::vector<std::vector<Coord>> untried;
    bool untriedInit = false;
};

/** Reward in (0, 1]: lower evaluation scores map to higher rewards. */
double
rewardOf(double score)
{
    return 1.0 / (1.0 + score);
}

} // namespace

std::vector<Coord>
randomGroup(const EirProblem &prob, int cb_idx, const TileMask &taken,
            Rng &rng, double take_prob)
{
    std::vector<Coord> group;
    std::vector<int> octs = {0, 1, 2, 3, 4, 5, 6, 7};
    rng.shuffle(octs);

    const Coord &cb = prob.cbs()[static_cast<std::size_t>(cb_idx)];
    auto is_taken = [&](const Coord &c) {
        if (taken.test(c))
            return true;
        for (const auto &g : group)
            if (g == c)
                return true;
        return false;
    };

    for (int oct : octs) {
        if (static_cast<int>(group.size()) >= prob.maxPerGroup())
            break;
        if (!rng.chance(take_prob))
            continue;
        std::vector<Coord> opts;
        for (const auto &c : prob.candidates(cb_idx))
            if (directionOctant(cb, c) == oct && !is_taken(c))
                opts.push_back(c);
        if (opts.empty())
            continue;
        group.push_back(opts[rng.nextBounded(opts.size())]);
    }
    return group;
}

std::vector<Coord>
randomGroup(const EirProblem &prob, int cb_idx,
            const std::vector<Coord> &taken, Rng &rng, double take_prob)
{
    TileMask mask(prob.width(), prob.height());
    for (const auto &t : taken)
        mask.add(t);
    return randomGroup(prob, cb_idx, mask, rng, take_prob);
}

SearchResult
mctsSearch(const EirProblem &prob, const EirEvaluator &eval,
           const MctsParams &params)
{
    Rng rng(params.seed);
    SearchResult result;
    result.method = "mcts";

    // The accumulator holds the committed groups (the evolving root)
    // plus, transiently, the tree path and rollout of the current
    // iteration.
    EvalAccumulator acc(&eval);

    for (int level = 0; level < prob.numCbs(); ++level) {
        Node root;
        root.depth = level;

        auto initUntried = [&](Node &node) {
            auto groups = prob.groupsFor(node.depth, acc.takenMask());
            rng.shuffle(groups);
            if (static_cast<int>(groups.size()) >
                params.maxChildrenPerNode)
                groups.resize(
                    static_cast<std::size_t>(params.maxChildrenPerNode));
            node.untried = std::move(groups);
            node.untriedInit = true;
        };

        for (int it = 0; it < params.iterationsPerLevel; ++it) {
            // (1) Selection: descend while fully expanded.
            Node *node = &root;
            for (;;) {
                if (node->depth >= prob.numCbs())
                    break; // terminal
                if (!node->untriedInit)
                    initUntried(*node);
                if (!node->untried.empty() || node->children.empty())
                    break;
                // UCB over children.
                Node *best = nullptr;
                double best_ucb = -1;
                for (auto &ch : node->children) {
                    double v = ch->totalReward / ch->visits;
                    double u = v + params.ucbC *
                                       std::sqrt(std::log(static_cast<
                                                          double>(
                                                     node->visits)) /
                                                 ch->visits);
                    if (u > best_ucb) {
                        best_ucb = u;
                        best = ch.get();
                    }
                }
                node = best;
                acc.push(node->depth - 1, node->group);
            }

            // (2) Expansion.
            if (node->depth < prob.numCbs() && !node->untried.empty()) {
                auto group = std::move(node->untried.back());
                node->untried.pop_back();
                auto child = std::make_unique<Node>();
                child->group = std::move(group);
                child->depth = node->depth + 1;
                child->parent = node;
                node->children.push_back(std::move(child));
                node = node->children.back().get();
                acc.push(node->depth - 1, node->group);
            }

            // (3) Simulation: random rollout for the remaining CBs.
            for (int cb = static_cast<int>(acc.depth());
                 cb < prob.numCbs(); ++cb)
                acc.push(cb,
                         randomGroup(prob, cb, acc.takenMask(), rng));
            double score = acc.score();
            ++result.evaluations;
            double reward = rewardOf(score);

            // (4) Backpropagation, then backtrack the accumulator to
            // the committed root state.
            for (Node *n = node; n != nullptr; n = n->parent) {
                n->totalReward += reward;
                ++n->visits;
            }
            while (acc.depth() > static_cast<std::size_t>(level))
                acc.pop();
        }

        // Commit the level-(level+1) child with the highest accumulated
        // score, as in the paper.
        Node *best = nullptr;
        for (auto &ch : root.children) {
            if (!best || ch->totalReward > best->totalReward)
                best = ch.get();
        }
        if (best) {
            acc.push(level, best->group);
        } else {
            acc.push(level, {}); // no legal group at all
        }
    }

    result.selection = acc.selection();
    result.eval = eval.evaluate(result.selection);
    eqx_assert(prob.valid(result.selection),
               "MCTS produced an invalid selection");
    return result;
}

} // namespace eqx
