/**
 * @file
 * Monte Carlo Tree Search for EIR selection (paper Section 4.3 and
 * Figure 6): iterative selection / expansion / simulation /
 * backpropagation with UCB, one tree level per CB group.
 */

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "core/search.hh"

namespace eqx {

namespace {

/** Flatten the taken-EIR set of a (partial) selection. */
std::vector<Coord>
takenOf(const EirSelection &sel)
{
    std::vector<Coord> taken;
    for (const auto &g : sel)
        taken.insert(taken.end(), g.begin(), g.end());
    return taken;
}

struct Node
{
    std::vector<Coord> group;      ///< the group this node adds
    int depth = 0;                 ///< CBs decided including this node
    double totalReward = 0.0;
    int visits = 0;
    Node *parent = nullptr;
    std::vector<std::unique_ptr<Node>> children;
    std::vector<std::vector<Coord>> untried;
    bool untriedInit = false;
};

/** Reward in (0, 1]: lower evaluation scores map to higher rewards. */
double
rewardOf(double score)
{
    return 1.0 / (1.0 + score);
}

} // namespace

std::vector<Coord>
randomGroup(const EirProblem &prob, int cb_idx,
            const std::vector<Coord> &taken, Rng &rng, double take_prob)
{
    std::vector<Coord> group;
    std::vector<int> octs = {0, 1, 2, 3, 4, 5, 6, 7};
    rng.shuffle(octs);

    const Coord &cb = prob.cbs()[static_cast<std::size_t>(cb_idx)];
    auto is_taken = [&](const Coord &c) {
        for (const auto &t : taken)
            if (t == c)
                return true;
        for (const auto &g : group)
            if (g == c)
                return true;
        return false;
    };

    for (int oct : octs) {
        if (static_cast<int>(group.size()) >= prob.maxPerGroup())
            break;
        if (!rng.chance(take_prob))
            continue;
        std::vector<Coord> opts;
        for (const auto &c : prob.candidates(cb_idx))
            if (directionOctant(cb, c) == oct && !is_taken(c))
                opts.push_back(c);
        if (opts.empty())
            continue;
        group.push_back(opts[rng.nextBounded(opts.size())]);
    }
    return group;
}

SearchResult
mctsSearch(const EirProblem &prob, const EirEvaluator &eval,
           const MctsParams &params)
{
    Rng rng(params.seed);
    SearchResult result;
    result.method = "mcts";

    EirSelection committed; // groups fixed so far (the evolving root)

    for (int level = 0; level < prob.numCbs(); ++level) {
        Node root;
        root.depth = level;

        auto initUntried = [&](Node &node, const EirSelection &state) {
            auto groups = prob.groupsFor(node.depth, takenOf(state));
            rng.shuffle(groups);
            if (static_cast<int>(groups.size()) >
                params.maxChildrenPerNode)
                groups.resize(
                    static_cast<std::size_t>(params.maxChildrenPerNode));
            node.untried = std::move(groups);
            node.untriedInit = true;
        };

        for (int it = 0; it < params.iterationsPerLevel; ++it) {
            // (1) Selection: descend while fully expanded.
            Node *node = &root;
            EirSelection state = committed;
            for (;;) {
                if (node->depth >= prob.numCbs())
                    break; // terminal
                if (!node->untriedInit)
                    initUntried(*node, state);
                if (!node->untried.empty() || node->children.empty())
                    break;
                // UCB over children.
                Node *best = nullptr;
                double best_ucb = -1;
                for (auto &ch : node->children) {
                    double v = ch->totalReward / ch->visits;
                    double u = v + params.ucbC *
                                       std::sqrt(std::log(static_cast<
                                                          double>(
                                                     node->visits)) /
                                                 ch->visits);
                    if (u > best_ucb) {
                        best_ucb = u;
                        best = ch.get();
                    }
                }
                node = best;
                state.push_back(node->group);
            }

            // (2) Expansion.
            if (node->depth < prob.numCbs() && !node->untried.empty()) {
                auto group = std::move(node->untried.back());
                node->untried.pop_back();
                auto child = std::make_unique<Node>();
                child->group = std::move(group);
                child->depth = node->depth + 1;
                child->parent = node;
                node->children.push_back(std::move(child));
                node = node->children.back().get();
                state.push_back(node->group);
            }

            // (3) Simulation: random rollout for the remaining CBs.
            EirSelection rollout = state;
            for (int cb = static_cast<int>(rollout.size());
                 cb < prob.numCbs(); ++cb)
                rollout.push_back(
                    randomGroup(prob, cb, takenOf(rollout), rng));
            double score = eval.score(rollout);
            ++result.evaluations;
            double reward = rewardOf(score);

            // (4) Backpropagation.
            for (Node *n = node; n != nullptr; n = n->parent) {
                n->totalReward += reward;
                ++n->visits;
            }
        }

        // Commit the level-(level+1) child with the highest accumulated
        // score, as in the paper.
        Node *best = nullptr;
        for (auto &ch : root.children) {
            if (!best || ch->totalReward > best->totalReward)
                best = ch.get();
        }
        if (best) {
            committed.push_back(best->group);
        } else {
            committed.emplace_back(); // no legal group at all
        }
    }

    result.selection = std::move(committed);
    result.eval = eval.evaluate(result.selection);
    eqx_assert(prob.valid(result.selection),
               "MCTS produced an invalid selection");
    return result;
}

} // namespace eqx
