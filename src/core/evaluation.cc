#include "core/evaluation.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.hh"
#include "core/hotzone.hh"

namespace eqx {

EirEvaluator::EirEvaluator(const EirProblem *problem, EvalWeights weights)
    : prob_(problem), weights_(weights)
{
    eqx_assert(prob_, "evaluator needs a problem");
    // References from the EIR-less baseline.
    std::set<Coord> cb_set(prob_->cbs().begin(), prob_->cbs().end());
    double dist_sum = 0;
    int pairs = 0;
    for (const auto &cb : prob_->cbs()) {
        for (int y = 0; y < prob_->height(); ++y) {
            for (int x = 0; x < prob_->width(); ++x) {
                Coord p{x, y};
                if (cb_set.count(p))
                    continue;
                dist_sum += manhattan(cb, p);
                ++pairs;
            }
        }
    }
    hopRef_ = pairs ? dist_sum / pairs : 1.0;
    loadRef_ = prob_->numCbs()
                   ? static_cast<double>(pairs) / prob_->numCbs()
                   : 1.0;
}

EvalBreakdown
EirEvaluator::evaluate(const EirSelection &sel) const
{
    EvalBreakdown out;
    std::set<Coord> cb_set(prob_->cbs().begin(), prob_->cbs().end());
    HotZoneMap hot(prob_->cbs(), prob_->width(), prob_->height());

    // Injection-point loads, per tile. Only CBs whose group has been
    // decided participate, so partial selections judged during search
    // are not drowned by the still-undecided CBs.
    std::map<Coord, double> load;
    double hop_sum = 0;
    double hop_weight = 0;
    int decided = std::min<int>(prob_->numCbs(),
                                static_cast<int>(sel.size()));
    if (decided == 0)
        decided = prob_->numCbs(); // empty selection = all-local design

    for (int i = 0; i < decided; ++i) {
        const Coord &cb = prob_->cbs()[static_cast<std::size_t>(i)];
        const std::vector<Coord> *group =
            i < static_cast<int>(sel.size())
                ? &sel[static_cast<std::size_t>(i)]
                : nullptr;

        for (int y = 0; y < prob_->height(); ++y) {
            for (int x = 0; x < prob_->width(); ++x) {
                Coord p{x, y};
                if (cb_set.count(p))
                    continue;
                int base = manhattan(cb, p);

                // Shortest-path EIRs per the Buffer Selection policy.
                Coord elig[2];
                int n_elig = 0;
                if (group) {
                    for (const auto &e : *group) {
                        if (manhattan(cb, e) + manhattan(e, p) == base &&
                            n_elig < 2)
                            elig[n_elig++] = e;
                    }
                }
                bool on_axis = cb.x == p.x || cb.y == p.y;
                if (n_elig == 0) {
                    load[cb] += 1.0;
                    hop_sum += base;
                } else if (on_axis || n_elig == 1) {
                    load[elig[0]] += 1.0;
                    hop_sum += 1 + manhattan(elig[0], p);
                } else {
                    load[elig[0]] += 0.5;
                    load[elig[1]] += 0.5;
                    hop_sum += 0.5 * (1 + manhattan(elig[0], p)) +
                               0.5 * (1 + manhattan(elig[1], p));
                }
                hop_weight += 1.0;
            }
        }
    }

    // Contention-aware load: an injection point inside other CBs' hot
    // zones absorbs their surrounding traffic too, so its effective
    // load is inflated (paper Section 3.2.4). The load metric blends
    // the maximum (the paper's hotspot criterion) with the mean load
    // per injection point, which captures the aggregate injection
    // bandwidth every additional EIR contributes.
    double load_sum = 0;
    for (const auto &[tile, l] : load) {
        double factor = 1.0;
        if (!cb_set.count(tile))
            factor += 0.3 * hot.coverage(tile);
        out.maxLoad = std::max(out.maxLoad, l * factor);
        load_sum += l * factor;
    }
    double mean_load =
        load.empty() ? 0.0 : load_sum / static_cast<double>(load.size());
    out.avgHops = hop_weight > 0 ? hop_sum / hop_weight : 0.0;

    LinkPlan plan = prob_->linkPlan(sel);
    out.crossings = plan.crossings();
    out.totalLength = plan.totalLengthHops();

    // Normalizers: crossings per link; link length against a full
    // deployment of reach-length links (so the cost scales with how
    // much wiring is actually deployed); repeater need as the fraction
    // of links beyond the 1-cycle interposer reach of 2 hops.
    constexpr int kReachHops = 2;
    double n_links = std::max<double>(1.0, plan.size());
    int over_reach = 0;
    for (const auto &link : plan.links())
        if (link.hops() > kReachHops)
            ++over_reach;
    out.repeaterFrac = plan.size() ? over_reach / n_links : 0.0;
    double len_ref = static_cast<double>(kReachHops) * prob_->numCbs() *
                     prob_->maxPerGroup();
    double load_term =
        0.5 * (out.maxLoad / loadRef_) + 0.5 * (mean_load / loadRef_);
    out.score = weights_.load * load_term +
                weights_.hops * (out.avgHops / hopRef_) +
                weights_.crossings * (out.crossings / n_links) +
                weights_.length * (out.totalLength / len_ref) +
                weights_.repeaters * out.repeaterFrac;
    return out;
}

} // namespace eqx
