#include "core/evaluation.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "core/hotzone.hh"

namespace eqx {

EirEvaluator::EirEvaluator(const EirProblem *problem, EvalWeights weights)
    : prob_(problem), weights_(weights)
{
    eqx_assert(prob_, "evaluator needs a problem");
    w_ = prob_->width();
    h_ = prob_->height();

    // Selection-independent state, hoisted out of evaluate(): the CB
    // occupancy bitmap and the per-tile hot-zone contention factor
    // (paper Section 3.2.4 — an injection point inside other CBs' hot
    // zones absorbs their surrounding traffic too). Both depend only
    // on the immutable problem, so every evaluation shares them.
    cbMask_.assign(static_cast<std::size_t>(w_ * h_), 0);
    for (const auto &cb : prob_->cbs())
        cbMask_[static_cast<std::size_t>(cb.y * w_ + cb.x)] = 1;
    HotZoneMap hot(prob_->cbs(), w_, h_);
    loadFactor_.assign(static_cast<std::size_t>(w_ * h_), 1.0);
    for (int y = 0; y < h_; ++y) {
        for (int x = 0; x < w_; ++x) {
            Coord p{x, y};
            std::size_t i = static_cast<std::size_t>(y * w_ + x);
            double factor = 1.0;
            if (!cbMask_[i])
                factor += 0.3 * hot.coverage(p);
            loadFactor_[i] = factor;
        }
    }

    // References from the EIR-less baseline.
    double dist_sum = 0;
    int pairs = 0;
    for (const auto &cb : prob_->cbs()) {
        for (int y = 0; y < h_; ++y) {
            for (int x = 0; x < w_; ++x) {
                Coord p{x, y};
                if (isCb(p))
                    continue;
                dist_sum += prob_->distance(cb, p);
                ++pairs;
            }
        }
    }
    hopRef_ = pairs ? dist_sum / pairs : 1.0;
    loadRef_ = prob_->numCbs()
                   ? static_cast<double>(pairs) / prob_->numCbs()
                   : 1.0;
}

EvalBreakdown
EirEvaluator::finish(const std::vector<std::pair<Coord, double>> &loads,
                     double hop_sum, double hop_weight, int crossings,
                     double total_length, std::size_t num_links,
                     int over_reach) const
{
    EvalBreakdown out;
    // Contention-aware load: the load metric blends the maximum (the
    // paper's hotspot criterion) with the mean load per injection
    // point, which captures the aggregate injection bandwidth every
    // additional EIR contributes. `loads` must list tiles in Coord
    // order with only actually-loaded tiles present — the entry count
    // is the mean's denominator.
    double load_sum = 0;
    for (const auto &[tile, l] : loads) {
        double factor = loadFactor(tile);
        out.maxLoad = std::max(out.maxLoad, l * factor);
        load_sum += l * factor;
    }
    double mean_load =
        loads.empty() ? 0.0
                      : load_sum / static_cast<double>(loads.size());
    out.avgHops = hop_weight > 0 ? hop_sum / hop_weight : 0.0;
    out.crossings = crossings;
    out.totalLength = total_length;

    // Normalizers: crossings per link; link length against a full
    // deployment of reach-length links (so the cost scales with how
    // much wiring is actually deployed); repeater need as the fraction
    // of links beyond the 1-cycle interposer reach of 2 hops.
    double n_links =
        std::max<double>(1.0, static_cast<double>(num_links));
    out.repeaterFrac = num_links ? over_reach / n_links : 0.0;
    double len_ref = static_cast<double>(kReachHops) * prob_->numCbs() *
                     prob_->maxPerGroup();
    double load_term =
        0.5 * (out.maxLoad / loadRef_) + 0.5 * (mean_load / loadRef_);
    out.score = weights_.load * load_term +
                weights_.hops * (out.avgHops / hopRef_) +
                weights_.crossings * (out.crossings / n_links) +
                weights_.length * (out.totalLength / len_ref) +
                weights_.repeaters * out.repeaterFrac;
    return out;
}

EvalBreakdown
EirEvaluator::evaluate(const EirSelection &sel) const
{
    // Injection-point loads, per tile. Only CBs whose group has been
    // decided participate, so partial selections judged during search
    // are not drowned by the still-undecided CBs.
    std::map<Coord, double> load;
    double hop_sum = 0;
    double hop_weight = 0;
    int decided = std::min<int>(prob_->numCbs(),
                                static_cast<int>(sel.size()));
    if (decided == 0)
        decided = prob_->numCbs(); // empty selection = all-local design

    for (int i = 0; i < decided; ++i) {
        const Coord &cb = prob_->cbs()[static_cast<std::size_t>(i)];
        const std::vector<Coord> *group =
            i < static_cast<int>(sel.size())
                ? &sel[static_cast<std::size_t>(i)]
                : nullptr;

        for (int y = 0; y < h_; ++y) {
            for (int x = 0; x < w_; ++x) {
                Coord p{x, y};
                if (isCb(p))
                    continue;
                int base = prob_->distance(cb, p);

                // Shortest-path EIRs per the Buffer Selection policy.
                Coord elig[2];
                int n_elig = 0;
                if (group) {
                    for (const auto &e : *group) {
                        if (prob_->distance(cb, e) + prob_->distance(e, p) == base &&
                            n_elig < 2)
                            elig[n_elig++] = e;
                    }
                }
                bool on_axis = cb.x == p.x || cb.y == p.y;
                if (n_elig == 0) {
                    load[cb] += 1.0;
                    hop_sum += base;
                } else if (on_axis || n_elig == 1) {
                    load[elig[0]] += 1.0;
                    hop_sum += 1 + prob_->distance(elig[0], p);
                } else {
                    load[elig[0]] += 0.5;
                    load[elig[1]] += 0.5;
                    hop_sum += 0.5 * (1 + prob_->distance(elig[0], p)) +
                               0.5 * (1 + prob_->distance(elig[1], p));
                }
                hop_weight += 1.0;
            }
        }
    }

    std::vector<std::pair<Coord, double>> loads;
    loads.reserve(load.size());
    for (const auto &[tile, l] : load)
        loads.emplace_back(tile, l);

    LinkPlan plan = prob_->linkPlan(sel);
    int over_reach = 0;
    for (const auto &link : plan.links())
        if (link.hops() > kReachHops)
            ++over_reach;

    return finish(loads, hop_sum, hop_weight, plan.crossings(),
                  plan.totalLengthHops(), plan.size(), over_reach);
}

void
EirEvaluator::computeContribution(int cb_idx,
                                  const std::vector<Coord> &group,
                                  EvalContribution &out) const
{
    out.loads.clear();
    out.hopSum = 0.0;
    out.hopWeight = 0.0;
    out.links.clear();
    out.lengthHops = 0.0;
    out.overReach = 0;

    const Coord &cb = prob_->cbs()[static_cast<std::size_t>(cb_idx)];

    // One load slot per group tile plus one for the CB itself; only
    // slots that actually receive flow survive into out.loads, so the
    // combined per-tile map has exactly the entries the from-scratch
    // std::map would (the entry count feeds the mean-load divisor).
    std::vector<EvalContribution::TileLoad> slots(group.size() + 1);
    for (std::size_t g = 0; g < group.size(); ++g)
        slots[g].tile = group[g];
    slots.back().tile = cb;

    // The same tile loop as evaluate(), restricted to this CB. All
    // increments are multiples of 0.5 well below 2^52, so the partial
    // sums are exact and combine order-independently.
    for (int y = 0; y < h_; ++y) {
        for (int x = 0; x < w_; ++x) {
            Coord p{x, y};
            if (isCb(p))
                continue;
            int base = prob_->distance(cb, p);

            int elig[2];
            int n_elig = 0;
            for (std::size_t g = 0; g < group.size(); ++g) {
                if (prob_->distance(cb, group[g]) +
                        prob_->distance(group[g], p) ==
                        base &&
                    n_elig < 2)
                    elig[n_elig++] = static_cast<int>(g);
            }
            bool on_axis = cb.x == p.x || cb.y == p.y;
            if (n_elig == 0) {
                slots.back().load += 1.0;
                ++slots.back().count;
                out.hopSum += base;
            } else if (on_axis || n_elig == 1) {
                auto &s0 = slots[static_cast<std::size_t>(elig[0])];
                s0.load += 1.0;
                ++s0.count;
                out.hopSum +=
                    1 + prob_->distance(
                            group[static_cast<std::size_t>(elig[0])], p);
            } else {
                auto &s0 = slots[static_cast<std::size_t>(elig[0])];
                auto &s1 = slots[static_cast<std::size_t>(elig[1])];
                s0.load += 0.5;
                ++s0.count;
                s1.load += 0.5;
                ++s1.count;
                out.hopSum +=
                    0.5 * (1 + prob_->distance(
                                   group[static_cast<std::size_t>(
                                       elig[0])],
                                   p)) +
                    0.5 * (1 + prob_->distance(
                                   group[static_cast<std::size_t>(
                                       elig[1])],
                                   p));
            }
            out.hopWeight += 1.0;
        }
    }

    for (auto &s : slots)
        if (s.count > 0)
            out.loads.push_back(s);

    out.links.reserve(group.size());
    for (const auto &e : group) {
        out.links.push_back(Segment{cb, e});
        int hops = manhattan(cb, e);
        out.lengthHops += hops;
        if (hops > kReachHops)
            ++out.overReach;
    }
}

const EvalContribution &
EirEvaluator::contribution(int cb_idx,
                           const std::vector<Coord> &group) const
{
    eqx_assert(cb_idx >= 0 && cb_idx < prob_->numCbs(),
               "contribution for an unknown CB");
    MemoKey key{cb_idx, group};
    auto it = memo_.find(key);
    if (it != memo_.end()) {
        ++memoHits_;
        return it->second;
    }
    ++memoMisses_;
    if (memo_.size() >= kMemoCap) {
        // Past the cap: still correct, just uncached.
        computeContribution(cb_idx, group, scratch_);
        return scratch_;
    }
    auto [ins, ok] = memo_.emplace(std::move(key), EvalContribution{});
    (void)ok;
    computeContribution(cb_idx, group, ins->second);
    return ins->second;
}

} // namespace eqx
