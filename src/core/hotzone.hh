/**
 * @file
 * Hot zones and the N-Queen scoring policy (paper Section 4.2).
 * Each CB's hot zone is the 8 surrounding tiles: the 4 directly
 * connected Direct Access Zones (DAZ) and the 4 Corner Access Zones
 * (CAZ). Tiles covered by the hot zones of two or more CBs are
 * "hot-zone overlaps"; a placement's penalty sums, per tile, the
 * compounded cost 1+2+..+m over its m overlapping direct neighbours.
 */

#ifndef EQX_CORE_HOTZONE_HH
#define EQX_CORE_HOTZONE_HH

#include <vector>

#include "common/types.hh"

namespace eqx {

/** The (up to) 4 DAZ tiles of a CB, clipped to the mesh. */
std::vector<Coord> dazTiles(const Coord &cb, int width, int height);

/** The (up to) 4 CAZ tiles of a CB, clipped to the mesh. */
std::vector<Coord> cazTiles(const Coord &cb, int width, int height);

/** DAZ union CAZ. */
std::vector<Coord> hotZoneTiles(const Coord &cb, int width, int height);

/** Per-tile map of how many distinct CBs cover the tile in a hot zone. */
class HotZoneMap
{
  public:
    HotZoneMap(const std::vector<Coord> &cbs, int width, int height);

    /** Number of CB hot zones covering this tile. */
    int coverage(const Coord &c) const;

    /** A tile covered by >= 2 distinct CB hot zones. */
    bool isOverlap(const Coord &c) const { return coverage(c) >= 2; }

    /** True if the tile is in any CB's hot zone. */
    bool inAnyHotZone(const Coord &c) const { return coverage(c) >= 1; }

    int width() const { return w_; }
    int height() const { return h_; }

  private:
    int w_;
    int h_;
    std::vector<int> cover_;
};

/**
 * Penalty of one tile: with m of its direct neighbours being hot-zone
 * overlaps, the score is sum(1..m) = m(m+1)/2 to reflect compounded
 * delay (paper's example: two overlap neighbours -> 1+2 = 3).
 */
int tilePenalty(const HotZoneMap &map, const Coord &c);

/** Total penalty of a placement: the sum of all tile penalties. */
int placementPenalty(const std::vector<Coord> &cbs, int width, int height);

} // namespace eqx

#endif // EQX_CORE_HOTZONE_HH
