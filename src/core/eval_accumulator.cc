#include "core/eval_accumulator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace eqx {

namespace {
const std::vector<Coord> kEmptyGroup;
} // namespace

EvalAccumulator::EvalAccumulator(const EirEvaluator *eval)
    : eval_(eval), w_(eval->problem()->width()),
      h_(eval->problem()->height()),
      load_(static_cast<std::size_t>(w_ * h_), 0.0),
      loadCount_(static_cast<std::size_t>(w_ * h_), 0), taken_(w_, h_)
{
    eqx_assert(eval_, "accumulator needs an evaluator");
    int num_cbs = eval_->problem()->numCbs();
    groups_.reserve(static_cast<std::size_t>(num_cbs));
    // Baseline: every CB undecided, carrying its all-local (empty
    // group) contribution.
    for (int cb = 0; cb < num_cbs; ++cb)
        apply(cb, eval_->contribution(cb, kEmptyGroup));
}

void
EvalAccumulator::apply(int cb_idx, const EvalContribution &c)
{
    for (const auto &tl : c.loads) {
        std::size_t i = static_cast<std::size_t>(tl.tile.y * w_ +
                                                 tl.tile.x);
        if (loadCount_[i] == 0) {
            auto pos = std::lower_bound(active_.begin(), active_.end(),
                                        static_cast<int>(i));
            active_.insert(pos, static_cast<int>(i));
        }
        load_[i] += tl.load;
        loadCount_[i] += tl.count;
    }
    hopSum_ += c.hopSum;
    hopWeight_ += c.hopWeight;
    ledger_.add(cb_idx, c.links);
    lengthHops_ += c.lengthHops;
    numLinks_ += c.links.size();
    overReach_ += c.overReach;
}

void
EvalAccumulator::unapply(int cb_idx, const EvalContribution &c)
{
    for (const auto &tl : c.loads) {
        std::size_t i = static_cast<std::size_t>(tl.tile.y * w_ +
                                                 tl.tile.x);
        load_[i] -= tl.load;
        loadCount_[i] -= tl.count;
        eqx_assert(loadCount_[i] >= 0, "tile load count underflow");
        if (loadCount_[i] == 0) {
            // Exact arithmetic: the removals must cancel bit-exactly.
            eqx_assert(load_[i] == 0.0, "tile load drifted");
            load_[i] = 0.0;
            auto pos = std::lower_bound(active_.begin(), active_.end(),
                                        static_cast<int>(i));
            eqx_assert(pos != active_.end() &&
                           *pos == static_cast<int>(i),
                       "active tile list out of sync");
            active_.erase(pos);
        }
    }
    hopSum_ -= c.hopSum;
    hopWeight_ -= c.hopWeight;
    ledger_.remove(cb_idx);
    lengthHops_ -= c.lengthHops;
    numLinks_ -= c.links.size();
    overReach_ -= c.overReach;
}

void
EvalAccumulator::push(int cb_idx, std::vector<Coord> group)
{
    eqx_assert(cb_idx == static_cast<int>(groups_.size()),
               "push must decide the next CB in order");
    eqx_assert(cb_idx < eval_->problem()->numCbs(),
               "push past the last CB");
    unapply(cb_idx, eval_->contribution(cb_idx, kEmptyGroup));
    apply(cb_idx, eval_->contribution(cb_idx, group));
    for (const auto &t : group)
        taken_.add(t);
    groups_.push_back(std::move(group));
}

void
EvalAccumulator::pop()
{
    eqx_assert(!groups_.empty(), "pop on an empty accumulator");
    int cb_idx = static_cast<int>(groups_.size()) - 1;
    const auto &group = groups_.back();
    unapply(cb_idx, eval_->contribution(cb_idx, group));
    apply(cb_idx, eval_->contribution(cb_idx, kEmptyGroup));
    for (const auto &t : group)
        taken_.remove(t);
    groups_.pop_back();
}

void
EvalAccumulator::setGroup(int cb_idx, std::vector<Coord> group)
{
    eqx_assert(cb_idx >= 0 &&
                   cb_idx < static_cast<int>(groups_.size()),
               "setGroup on an undecided CB");
    auto &cur = groups_[static_cast<std::size_t>(cb_idx)];
    if (cur == group)
        return;
    unapply(cb_idx, eval_->contribution(cb_idx, cur));
    for (const auto &t : cur)
        taken_.remove(t);
    apply(cb_idx, eval_->contribution(cb_idx, group));
    for (const auto &t : group)
        taken_.add(t);
    cur = std::move(group);
}

void
EvalAccumulator::reset()
{
    while (!groups_.empty())
        pop();
}

EvalBreakdown
EvalAccumulator::evaluate() const
{
    loadScratch_.clear();
    loadScratch_.reserve(active_.size());
    for (int i : active_) {
        Coord tile{i % w_, i / w_};
        loadScratch_.emplace_back(tile, load_[static_cast<std::size_t>(
                                            i)]);
    }
    return eval_->finish(loadScratch_, hopSum_, hopWeight_,
                         ledger_.crossings(), lengthHops_, numLinks_,
                         overReach_);
}

} // namespace eqx
