/**
 * @file
 * Baseline EIR search methods: greedy, random sampling, simulated
 * annealing and a genetic algorithm. The paper argues (Section 4.3)
 * that GA/SA fit the problem representation less naturally than MCTS;
 * these implementations back that ablation quantitatively.
 */

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.hh"
#include "core/search.hh"

namespace eqx {

namespace {

std::vector<Coord>
takenOf(const EirSelection &sel)
{
    std::vector<Coord> taken;
    for (const auto &g : sel)
        taken.insert(taken.end(), g.begin(), g.end());
    return taken;
}

EirSelection
randomSelection(const EirProblem &prob, Rng &rng)
{
    EirSelection sel;
    for (int cb = 0; cb < prob.numCbs(); ++cb)
        sel.push_back(randomGroup(prob, cb, takenOf(sel), rng));
    return sel;
}

/** Drop EIRs that collide with earlier groups (GA crossover repair). */
void
repair(const EirProblem &prob, EirSelection &sel)
{
    std::set<Coord> seen;
    for (int cb = 0; cb < static_cast<int>(sel.size()); ++cb) {
        auto &group = sel[static_cast<std::size_t>(cb)];
        std::vector<Coord> kept;
        std::set<int> octs;
        const Coord &c = prob.cbs()[static_cast<std::size_t>(cb)];
        for (const auto &e : group) {
            if (seen.count(e))
                continue;
            int oct = directionOctant(c, e);
            if (octs.count(oct))
                continue;
            kept.push_back(e);
            seen.insert(e);
            octs.insert(oct);
        }
        group = std::move(kept);
    }
}

} // namespace

SearchResult
greedySearch(const EirProblem &prob, const EirEvaluator &eval,
             std::size_t max_groups_per_cb)
{
    SearchResult result;
    result.method = "greedy";
    EirSelection sel;
    for (int cb = 0; cb < prob.numCbs(); ++cb) {
        auto groups = prob.groupsFor(cb, takenOf(sel));
        if (groups.size() > max_groups_per_cb)
            groups.resize(max_groups_per_cb);
        double best_score = 0;
        std::size_t best_idx = 0;
        for (std::size_t i = 0; i < groups.size(); ++i) {
            EirSelection trial = sel;
            trial.push_back(groups[i]);
            double s = eval.score(trial);
            ++result.evaluations;
            if (i == 0 || s < best_score) {
                best_score = s;
                best_idx = i;
            }
        }
        sel.push_back(groups[best_idx]);
    }
    result.selection = std::move(sel);
    result.eval = eval.evaluate(result.selection);
    eqx_assert(prob.valid(result.selection),
               "greedy produced an invalid selection");
    return result;
}

SearchResult
polishSelection(const EirProblem &prob, const EirEvaluator &eval,
                EirSelection start, int max_passes,
                std::size_t max_groups_per_cb)
{
    SearchResult result;
    result.method = "polish";
    while (static_cast<int>(start.size()) < prob.numCbs())
        start.emplace_back();
    double cur = eval.score(start);
    ++result.evaluations;

    for (int pass = 0; pass < max_passes; ++pass) {
        bool improved = false;
        for (int cb = 0; cb < prob.numCbs(); ++cb) {
            // Free this CB's group, then best-respond.
            EirSelection trial = start;
            trial[static_cast<std::size_t>(cb)].clear();
            std::vector<Coord> taken = takenOf(trial);
            auto groups = prob.groupsFor(cb, taken);
            if (groups.size() > max_groups_per_cb)
                groups.resize(max_groups_per_cb);
            for (auto &g : groups) {
                trial[static_cast<std::size_t>(cb)] = std::move(g);
                double s = eval.score(trial);
                ++result.evaluations;
                if (s < cur) {
                    cur = s;
                    start = trial;
                    improved = true;
                }
            }
        }
        if (!improved)
            break;
    }
    result.selection = std::move(start);
    result.eval = eval.evaluate(result.selection);
    eqx_assert(prob.valid(result.selection),
               "polish produced an invalid selection");
    return result;
}

SearchResult
randomSearch(const EirProblem &prob, const EirEvaluator &eval, int trials,
             std::uint64_t seed)
{
    Rng rng(seed);
    SearchResult result;
    result.method = "random";
    bool first = true;
    for (int t = 0; t < trials; ++t) {
        EirSelection sel = randomSelection(prob, rng);
        double s = eval.score(sel);
        ++result.evaluations;
        if (first || s < result.eval.score) {
            result.selection = std::move(sel);
            result.eval = eval.evaluate(result.selection);
            first = false;
        }
    }
    return result;
}

SearchResult
annealSearch(const EirProblem &prob, const EirEvaluator &eval,
             const AnnealParams &params)
{
    Rng rng(params.seed);
    SearchResult result;
    result.method = "anneal";

    EirSelection cur = randomSelection(prob, rng);
    double cur_score = eval.score(cur);
    ++result.evaluations;
    result.selection = cur;
    result.eval = eval.evaluate(cur);

    for (int step = 0; step < params.steps; ++step) {
        double frac = static_cast<double>(step) / params.steps;
        double temp = params.tStart *
                      std::pow(params.tEnd / params.tStart, frac);

        // Neighbour: re-pick one CB's group.
        int cb = static_cast<int>(rng.nextBounded(
            static_cast<std::uint64_t>(prob.numCbs())));
        EirSelection next = cur;
        next[static_cast<std::size_t>(cb)].clear();
        next[static_cast<std::size_t>(cb)] =
            randomGroup(prob, cb, takenOf(next), rng);
        double next_score = eval.score(next);
        ++result.evaluations;

        bool accept = next_score <= cur_score ||
                      rng.chance(std::exp((cur_score - next_score) /
                                          std::max(temp, 1e-9)));
        if (accept) {
            cur = std::move(next);
            cur_score = next_score;
            if (cur_score < result.eval.score) {
                result.selection = cur;
                result.eval = eval.evaluate(cur);
            }
        }
    }
    return result;
}

SearchResult
geneticSearch(const EirProblem &prob, const EirEvaluator &eval,
              const GeneticParams &params)
{
    Rng rng(params.seed);
    SearchResult result;
    result.method = "genetic";

    struct Individual
    {
        EirSelection sel;
        double score = 0;
    };

    std::vector<Individual> pop;
    pop.reserve(static_cast<std::size_t>(params.population));
    for (int i = 0; i < params.population; ++i) {
        Individual ind;
        ind.sel = randomSelection(prob, rng);
        ind.score = eval.score(ind.sel);
        ++result.evaluations;
        pop.push_back(std::move(ind));
    }

    auto tournament = [&]() -> const Individual & {
        const Individual &a = pop[rng.nextBounded(pop.size())];
        const Individual &b = pop[rng.nextBounded(pop.size())];
        return a.score <= b.score ? a : b;
    };

    for (int gen = 0; gen < params.generations; ++gen) {
        std::vector<Individual> next;
        next.reserve(pop.size());
        // Elitism: carry the best individual forward.
        const Individual *best = &pop[0];
        for (const auto &ind : pop)
            if (ind.score < best->score)
                best = &ind;
        next.push_back(*best);

        while (next.size() < pop.size()) {
            const Individual &pa = tournament();
            const Individual &pb = tournament();
            Individual child;
            // Uniform per-CB crossover followed by conflict repair.
            for (int cb = 0; cb < prob.numCbs(); ++cb)
                child.sel.push_back(
                    rng.chance(0.5)
                        ? pa.sel[static_cast<std::size_t>(cb)]
                        : pb.sel[static_cast<std::size_t>(cb)]);
            repair(prob, child.sel);
            if (rng.chance(params.mutationRate)) {
                int cb = static_cast<int>(rng.nextBounded(
                    static_cast<std::uint64_t>(prob.numCbs())));
                child.sel[static_cast<std::size_t>(cb)].clear();
                child.sel[static_cast<std::size_t>(cb)] =
                    randomGroup(prob, cb, takenOf(child.sel), rng);
            }
            child.score = eval.score(child.sel);
            ++result.evaluations;
            next.push_back(std::move(child));
        }
        pop = std::move(next);
    }

    const Individual *best = &pop[0];
    for (const auto &ind : pop)
        if (ind.score < best->score)
            best = &ind;
    result.selection = best->sel;
    result.eval = eval.evaluate(result.selection);
    return result;
}

} // namespace eqx
