/**
 * @file
 * Baseline EIR search methods: greedy, random sampling, simulated
 * annealing and a genetic algorithm. The paper argues (Section 4.3)
 * that GA/SA fit the problem representation less naturally than MCTS;
 * these implementations back that ablation quantitatively.
 *
 * All methods score through the incremental EvalAccumulator: a greedy
 * candidate or an annealing neighbour is a push/pop or setGroup away
 * from the previous state, so each probe costs O(changed CB) instead
 * of a from-scratch O(decided x W x H) rebuild. Scores — and hence
 * the selected designs and the evaluation counts — are bit-identical
 * to the from-scratch path (DESIGN.md §15).
 */

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.hh"
#include "core/eval_accumulator.hh"
#include "core/search.hh"

namespace eqx {

namespace {

/** Flatten a selection's tiles into a fresh mask. */
TileMask
maskOf(const EirProblem &prob, const EirSelection &sel)
{
    TileMask mask(prob.width(), prob.height());
    for (const auto &g : sel)
        for (const auto &t : g)
            mask.add(t);
    return mask;
}

EirSelection
randomSelection(const EirProblem &prob, Rng &rng)
{
    EirSelection sel;
    TileMask taken(prob.width(), prob.height());
    for (int cb = 0; cb < prob.numCbs(); ++cb) {
        auto group = randomGroup(prob, cb, taken, rng);
        for (const auto &t : group)
            taken.add(t);
        sel.push_back(std::move(group));
    }
    return sel;
}

/** Load a full selection into the accumulator and score it. */
double
scoreSelection(EvalAccumulator &acc, const EirSelection &sel)
{
    acc.reset();
    for (std::size_t cb = 0; cb < sel.size(); ++cb)
        acc.push(static_cast<int>(cb), sel[cb]);
    return acc.score();
}

/** Drop EIRs that collide with earlier groups (GA crossover repair). */
void
repair(const EirProblem &prob, EirSelection &sel)
{
    std::set<Coord> seen;
    for (int cb = 0; cb < static_cast<int>(sel.size()); ++cb) {
        auto &group = sel[static_cast<std::size_t>(cb)];
        std::vector<Coord> kept;
        std::set<int> octs;
        const Coord &c = prob.cbs()[static_cast<std::size_t>(cb)];
        for (const auto &e : group) {
            if (seen.count(e))
                continue;
            int oct = directionOctant(c, e);
            if (octs.count(oct))
                continue;
            kept.push_back(e);
            seen.insert(e);
            octs.insert(oct);
        }
        group = std::move(kept);
    }
}

} // namespace

SearchResult
greedySearch(const EirProblem &prob, const EirEvaluator &eval,
             std::size_t max_groups_per_cb)
{
    SearchResult result;
    result.method = "greedy";
    EvalAccumulator acc(&eval);
    for (int cb = 0; cb < prob.numCbs(); ++cb) {
        auto groups = prob.groupsFor(cb, acc.takenMask());
        if (groups.size() > max_groups_per_cb)
            groups.resize(max_groups_per_cb);
        double best_score = 0;
        std::size_t best_idx = 0;
        for (std::size_t i = 0; i < groups.size(); ++i) {
            acc.push(cb, groups[i]);
            double s = acc.score();
            acc.pop();
            ++result.evaluations;
            if (i == 0 || s < best_score) {
                best_score = s;
                best_idx = i;
            }
        }
        acc.push(cb, std::move(groups[best_idx]));
    }
    result.selection = acc.selection();
    result.eval = eval.evaluate(result.selection);
    eqx_assert(prob.valid(result.selection),
               "greedy produced an invalid selection");
    return result;
}

SearchResult
polishSelection(const EirProblem &prob, const EirEvaluator &eval,
                EirSelection start, int max_passes,
                std::size_t max_groups_per_cb)
{
    SearchResult result;
    result.method = "polish";
    while (static_cast<int>(start.size()) < prob.numCbs())
        start.emplace_back();

    EvalAccumulator acc(&eval);
    for (std::size_t cb = 0; cb < start.size(); ++cb)
        acc.push(static_cast<int>(cb), std::move(start[cb]));
    double cur = acc.score();
    ++result.evaluations;

    for (int pass = 0; pass < max_passes; ++pass) {
        bool improved = false;
        for (int cb = 0; cb < prob.numCbs(); ++cb) {
            // Free this CB's group, then best-respond.
            std::vector<Coord> best_group = acc.group(cb);
            acc.setGroup(cb, {});
            auto groups = prob.groupsFor(cb, acc.takenMask());
            if (groups.size() > max_groups_per_cb)
                groups.resize(max_groups_per_cb);
            for (auto &g : groups) {
                acc.setGroup(cb, std::move(g));
                double s = acc.score();
                ++result.evaluations;
                if (s < cur) {
                    cur = s;
                    best_group = acc.group(cb);
                    improved = true;
                }
            }
            acc.setGroup(cb, std::move(best_group));
        }
        if (!improved)
            break;
    }
    result.selection = acc.selection();
    result.eval = eval.evaluate(result.selection);
    eqx_assert(prob.valid(result.selection),
               "polish produced an invalid selection");
    return result;
}

SearchResult
randomSearch(const EirProblem &prob, const EirEvaluator &eval, int trials,
             std::uint64_t seed)
{
    Rng rng(seed);
    SearchResult result;
    result.method = "random";
    EvalAccumulator acc(&eval);
    bool first = true;
    for (int t = 0; t < trials; ++t) {
        EirSelection sel = randomSelection(prob, rng);
        double s = scoreSelection(acc, sel);
        ++result.evaluations;
        if (first || s < result.eval.score) {
            result.selection = std::move(sel);
            result.eval = acc.evaluate();
            first = false;
        }
    }
    return result;
}

SearchResult
annealSearch(const EirProblem &prob, const EirEvaluator &eval,
             const AnnealParams &params)
{
    Rng rng(params.seed);
    SearchResult result;
    result.method = "anneal";

    EvalAccumulator acc(&eval);
    double cur_score = scoreSelection(acc, randomSelection(prob, rng));
    ++result.evaluations;
    result.selection = acc.selection();
    result.eval = acc.evaluate();

    for (int step = 0; step < params.steps; ++step) {
        double frac = static_cast<double>(step) / params.steps;
        double temp = params.tStart *
                      std::pow(params.tEnd / params.tStart, frac);

        // Neighbour: re-pick one CB's group.
        int cb = static_cast<int>(rng.nextBounded(
            static_cast<std::uint64_t>(prob.numCbs())));
        std::vector<Coord> old_group = acc.group(cb);
        acc.setGroup(cb, {});
        acc.setGroup(cb, randomGroup(prob, cb, acc.takenMask(), rng));
        double next_score = acc.score();
        ++result.evaluations;

        bool accept = next_score <= cur_score ||
                      rng.chance(std::exp((cur_score - next_score) /
                                          std::max(temp, 1e-9)));
        if (accept) {
            cur_score = next_score;
            if (cur_score < result.eval.score) {
                result.selection = acc.selection();
                result.eval = acc.evaluate();
            }
        } else {
            // Exact arithmetic: restoring the old group restores the
            // accumulator state bit for bit.
            acc.setGroup(cb, std::move(old_group));
        }
    }
    return result;
}

SearchResult
geneticSearch(const EirProblem &prob, const EirEvaluator &eval,
              const GeneticParams &params)
{
    Rng rng(params.seed);
    SearchResult result;
    result.method = "genetic";

    struct Individual
    {
        EirSelection sel;
        double score = 0;
    };

    EvalAccumulator acc(&eval);
    std::vector<Individual> pop;
    pop.reserve(static_cast<std::size_t>(params.population));
    for (int i = 0; i < params.population; ++i) {
        Individual ind;
        ind.sel = randomSelection(prob, rng);
        ind.score = scoreSelection(acc, ind.sel);
        ++result.evaluations;
        pop.push_back(std::move(ind));
    }

    auto tournament = [&]() -> const Individual & {
        const Individual &a = pop[rng.nextBounded(pop.size())];
        const Individual &b = pop[rng.nextBounded(pop.size())];
        return a.score <= b.score ? a : b;
    };

    for (int gen = 0; gen < params.generations; ++gen) {
        std::vector<Individual> next;
        next.reserve(pop.size());
        // Elitism: carry the best individual forward.
        const Individual *best = &pop[0];
        for (const auto &ind : pop)
            if (ind.score < best->score)
                best = &ind;
        next.push_back(*best);

        while (next.size() < pop.size()) {
            const Individual &pa = tournament();
            const Individual &pb = tournament();
            Individual child;
            // Uniform per-CB crossover followed by conflict repair.
            for (int cb = 0; cb < prob.numCbs(); ++cb)
                child.sel.push_back(
                    rng.chance(0.5)
                        ? pa.sel[static_cast<std::size_t>(cb)]
                        : pb.sel[static_cast<std::size_t>(cb)]);
            repair(prob, child.sel);
            if (rng.chance(params.mutationRate)) {
                int cb = static_cast<int>(rng.nextBounded(
                    static_cast<std::uint64_t>(prob.numCbs())));
                child.sel[static_cast<std::size_t>(cb)].clear();
                child.sel[static_cast<std::size_t>(cb)] = randomGroup(
                    prob, cb, maskOf(prob, child.sel), rng);
            }
            child.score = scoreSelection(acc, child.sel);
            ++result.evaluations;
            next.push_back(std::move(child));
        }
        pop = std::move(next);
    }

    const Individual *best = &pop[0];
    for (const auto &ind : pop)
        if (ind.score < best->score)
            best = &ind;
    result.selection = best->sel;
    result.eval = eval.evaluate(result.selection);
    return result;
}

} // namespace eqx
