/**
 * @file
 * The EIR selection problem (paper Section 3.2 / 4.3): given a CB
 * placement, choose for every CB a group of Equivalent Injection
 * Routers subject to the topological, architectural and physical
 * constraints the paper identifies.
 *
 * Constraints encoded here:
 *  - an EIR lies within [2, maxHops] Manhattan hops of its CB
 *    (distance >= 2 bypasses the DAZ/CAZ hot zone);
 *  - an EIR is not a CB and not inside any CB's hot zone;
 *  - at most one EIR per relative direction octant (4 axes +
 *    4 quadrants), at most maxPerGroup per CB;
 *  - an EIR serves exactly one CB (no sharing).
 */

#ifndef EQX_CORE_EIR_PROBLEM_HH
#define EQX_CORE_EIR_PROBLEM_HH

#include <map>
#include <vector>

#include "common/tile_mask.hh"
#include "common/types.hh"
#include "interposer/link_plan.hh"
#include "noc/topology.hh"

namespace eqx {

/** A full assignment: CB index -> its EIR tiles. */
using EirSelection = std::vector<std::vector<Coord>>;

/** Relative-direction octant of @p to as seen from @p from (0..7). */
int directionOctant(const Coord &from, const Coord &to);

/** Problem instance: mesh, placement and structural limits. */
class EirProblem
{
  public:
    EirProblem(int width, int height, std::vector<Coord> cbs,
               int max_hops = 3, int max_per_group = 4,
               const TopoSpec &topo = {});

    int width() const { return w_; }
    int height() const { return h_; }

    /** The reply-fabric geometry the problem is scored against. */
    const Topology &topology() const { return *topo_; }

    /**
     * Routed hop distance between tiles on the reply fabric — the
     * shared Topology::distance (DESIGN.md §17), so the evaluator's
     * hop metrics agree with what the NoC simulates. Manhattan on the
     * default mesh, byte-identical to the pre-topology scorer.
     */
    int
    distance(const Coord &a, const Coord &b) const
    {
        return topo_->distance(a, b);
    }
    int numCbs() const { return static_cast<int>(cbs_.size()); }
    const std::vector<Coord> &cbs() const { return cbs_; }
    int maxHops() const { return maxHops_; }
    int maxPerGroup() const { return maxPerGroup_; }

    /** All individually legal EIR tiles for CB @p cb_idx. */
    const std::vector<Coord> &candidates(int cb_idx) const;

    /**
     * Enumerate legal groups for CB @p cb_idx, excluding tiles already
     * taken by other groups. Groups satisfy the octant and size rules;
     * the empty group is included last as a fallback (a CB may end up
     * with no EIR near a crowded boundary). The mask overload is the
     * hot-loop form; the vector overload flattens into a mask and
     * enumerates the identical group sequence.
     */
    std::vector<std::vector<Coord>>
    groupsFor(int cb_idx, const TileMask &taken) const;
    std::vector<std::vector<Coord>>
    groupsFor(int cb_idx, const std::vector<Coord> &taken) const;

    /** Check a full selection against every constraint. */
    bool valid(const EirSelection &sel, std::string *why = nullptr) const;

    /** Build the interposer link plan (one 128-bit link per EIR). */
    LinkPlan linkPlan(const EirSelection &sel, int width_bits = 128) const;

  private:
    bool legalEir(int cb_idx, const Coord &c) const;

    int w_;
    int h_;
    std::unique_ptr<const Topology> topo_;
    std::vector<Coord> cbs_;
    int maxHops_;
    int maxPerGroup_;
    std::vector<std::vector<Coord>> candidates_;
};

} // namespace eqx

#endif // EQX_CORE_EIR_PROBLEM_HH
