/**
 * @file
 * N-Queen based CB placement (paper Section 4.2): enumerate or sample
 * N-Queen solutions, score them with the hot-zone penalty policy, trim
 * them when fewer CBs than N are needed, and extend with knight-move
 * placement when more CBs than N are needed (Section 6.8).
 */

#ifndef EQX_CORE_NQUEEN_HH
#define EQX_CORE_NQUEEN_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace eqx {

/**
 * Enumerate N-Queen solutions on an n x n board in deterministic
 * (lexicographic column) order, up to max_solutions. Each solution is
 * a vector of Coord{col, row} for rows 0..n-1. For n = 8 the full set
 * has 92 solutions.
 */
std::vector<std::vector<Coord>> solveNQueens(int n,
                                             std::size_t max_solutions);

/** Number of solutions (capped); convenience over solveNQueens. */
std::size_t countNQueenSolutions(int n, std::size_t cap);

/**
 * Sample distinct N-Queen solutions for large boards by randomized
 * backtracking (column order shuffled per row). Deterministic for a
 * given seed; used for 12x12 / 16x16 where full enumeration is huge.
 */
std::vector<std::vector<Coord>> sampleNQueens(int n, std::size_t count,
                                              Rng &rng);

/** Result of the scored placement search. */
struct ScoredPlacement
{
    std::vector<Coord> cbs;
    int penalty = 0;
};

/**
 * The paper's placement flow: generate N-Queen solutions (all of them
 * when n <= 8, otherwise sample_count samples), trim each to num_cbs
 * queens by greedy penalty-minimizing deletion, score with the
 * hot-zone policy, and return the least-penalized placement.
 */
ScoredPlacement bestNQueenPlacement(int n, int num_cbs, Rng &rng,
                                    std::size_t sample_count = 256);

/**
 * Knight-move placement for num_cbs > n (paper Section 6.8): CBs are
 * laid out along repeated knight moves, which minimizes co-row /
 * co-column / co-diagonal occurrences.
 */
std::vector<Coord> knightPlacement(int n, int num_cbs);

} // namespace eqx

#endif // EQX_CORE_NQUEEN_HH
