#include "core/design_flow.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/hotzone.hh"
#include "core/nqueen.hh"

namespace eqx {

const char *
searchMethodName(SearchMethod m)
{
    switch (m) {
      case SearchMethod::Mcts:    return "mcts";
      case SearchMethod::Greedy:  return "greedy";
      case SearchMethod::Random:  return "random";
      case SearchMethod::Anneal:  return "anneal";
      case SearchMethod::Genetic: return "genetic";
    }
    return "?";
}

int
EquiNoxDesign::numEirs() const
{
    int n = 0;
    for (const auto &g : eirGroups)
        n += static_cast<int>(g.size());
    return n;
}

std::map<NodeId, std::vector<NodeId>>
EquiNoxDesign::eirGroupsByNode() const
{
    std::map<NodeId, std::vector<NodeId>> out;
    for (std::size_t i = 0; i < cbs.size(); ++i) {
        NodeId cb = static_cast<NodeId>(cbs[i].y * width + cbs[i].x);
        std::vector<NodeId> eirs;
        if (i < eirGroups.size()) {
            for (const auto &e : eirGroups[i])
                eirs.push_back(static_cast<NodeId>(e.y * width + e.x));
        }
        out[cb] = std::move(eirs);
    }
    return out;
}

std::vector<NodeId>
EquiNoxDesign::cbNodes() const
{
    std::vector<NodeId> out;
    out.reserve(cbs.size());
    for (const auto &c : cbs)
        out.push_back(static_cast<NodeId>(c.y * width + c.x));
    return out;
}

std::string
EquiNoxDesign::ascii() const
{
    // Digits mark group membership: CB i prints as uppercase letter,
    // its EIRs as the matching lowercase letter.
    std::vector<char> grid(static_cast<std::size_t>(width * height), '.');
    for (std::size_t i = 0; i < cbs.size(); ++i) {
        char cb_ch = static_cast<char>('A' + (i % 26));
        char eir_ch = static_cast<char>('a' + (i % 26));
        grid[static_cast<std::size_t>(cbs[i].y * width + cbs[i].x)] =
            cb_ch;
        if (i < eirGroups.size()) {
            for (const auto &e : eirGroups[i])
                grid[static_cast<std::size_t>(e.y * width + e.x)] =
                    eir_ch;
        }
    }
    std::ostringstream os;
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x)
            os << grid[static_cast<std::size_t>(y * width + x)] << ' ';
        os << '\n';
    }
    return os.str();
}

EquiNoxDesign
buildEquiNoxDesign(const DesignParams &params)
{
    eqx_assert(params.width == params.height,
               "N-Queen placement assumes a square mesh");
    EquiNoxDesign design;
    design.width = params.width;
    design.height = params.height;

    Rng rng(params.seed);
    if (!params.fixedPlacement.empty()) {
        design.cbs = params.fixedPlacement;
        design.placementPenalty =
            placementPenalty(design.cbs, params.width, params.height);
    } else if (params.numCbs <= params.width) {
        ScoredPlacement sp =
            bestNQueenPlacement(params.width, params.numCbs, rng);
        design.cbs = std::move(sp.cbs);
        design.placementPenalty = sp.penalty;
    } else {
        design.cbs = knightPlacement(params.width, params.numCbs);
        design.placementPenalty =
            placementPenalty(design.cbs, params.width, params.height);
    }

    EirProblem prob(params.width, params.height, design.cbs,
                    params.maxHops, params.maxPerGroup, params.topo);
    EirEvaluator eval(&prob, params.weights);

    SearchResult res;
    switch (params.method) {
      case SearchMethod::Mcts: {
        MctsParams mp = params.mcts;
        mp.seed = params.seed;
        res = mctsSearch(prob, eval, mp);
        break;
      }
      case SearchMethod::Greedy:
        res = greedySearch(prob, eval);
        break;
      case SearchMethod::Random:
        res = randomSearch(prob, eval, 2000, params.seed);
        break;
      case SearchMethod::Anneal: {
        AnnealParams ap;
        ap.seed = params.seed;
        res = annealSearch(prob, eval, ap);
        break;
      }
      case SearchMethod::Genetic: {
        GeneticParams gp;
        gp.seed = params.seed;
        res = geneticSearch(prob, eval, gp);
        break;
      }
    }

    if (params.polishPasses > 0) {
        SearchResult polished =
            polishSelection(prob, eval, std::move(res.selection),
                            params.polishPasses);
        polished.evaluations += res.evaluations;
        res = std::move(polished);
    }

    design.eirGroups = std::move(res.selection);
    design.eval = res.eval;
    design.evaluations = res.evaluations;
    design.plan = prob.linkPlan(design.eirGroups);
    design.rdl = design.plan.report();
    return design;
}

} // namespace eqx
