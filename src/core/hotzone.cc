#include "core/hotzone.hh"

#include "common/logging.hh"

namespace eqx {

namespace {

bool
inBounds(const Coord &c, int w, int h)
{
    return c.x >= 0 && c.x < w && c.y >= 0 && c.y < h;
}

} // namespace

std::vector<Coord>
dazTiles(const Coord &cb, int width, int height)
{
    std::vector<Coord> out;
    for (Dir d : {Dir::North, Dir::East, Dir::South, Dir::West}) {
        Coord s = dirStep(d);
        Coord c{cb.x + s.x, cb.y + s.y};
        if (inBounds(c, width, height))
            out.push_back(c);
    }
    return out;
}

std::vector<Coord>
cazTiles(const Coord &cb, int width, int height)
{
    std::vector<Coord> out;
    for (int dx : {-1, 1}) {
        for (int dy : {-1, 1}) {
            Coord c{cb.x + dx, cb.y + dy};
            if (inBounds(c, width, height))
                out.push_back(c);
        }
    }
    return out;
}

std::vector<Coord>
hotZoneTiles(const Coord &cb, int width, int height)
{
    auto out = dazTiles(cb, width, height);
    auto caz = cazTiles(cb, width, height);
    out.insert(out.end(), caz.begin(), caz.end());
    return out;
}

HotZoneMap::HotZoneMap(const std::vector<Coord> &cbs, int width, int height)
    : w_(width), h_(height),
      cover_(static_cast<std::size_t>(width * height), 0)
{
    for (const auto &cb : cbs) {
        eqx_assert(inBounds(cb, w_, h_), "CB out of bounds");
        for (const auto &t : hotZoneTiles(cb, w_, h_))
            ++cover_[static_cast<std::size_t>(t.y * w_ + t.x)];
    }
}

int
HotZoneMap::coverage(const Coord &c) const
{
    if (!inBounds(c, w_, h_))
        return 0;
    return cover_[static_cast<std::size_t>(c.y * w_ + c.x)];
}

int
tilePenalty(const HotZoneMap &map, const Coord &c)
{
    int m = 0;
    for (Dir d : {Dir::North, Dir::East, Dir::South, Dir::West}) {
        Coord s = dirStep(d);
        Coord n{c.x + s.x, c.y + s.y};
        if (map.isOverlap(n))
            ++m;
    }
    return m * (m + 1) / 2;
}

int
placementPenalty(const std::vector<Coord> &cbs, int width, int height)
{
    HotZoneMap map(cbs, width, height);
    int total = 0;
    for (int y = 0; y < height; ++y)
        for (int x = 0; x < width; ++x)
            total += tilePenalty(map, Coord{x, y});
    return total;
}

} // namespace eqx
