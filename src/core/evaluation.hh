/**
 * @file
 * The MCTS evaluation function (paper Section 4.3): four normalized
 * metrics — max injection-point traffic load, average hop count, RDL
 * intersection count and total interposer link length — summed into a
 * single score (lower is better). The load/hop estimates follow the
 * Buffer Selection policy exactly, assuming uniform per-PE demand.
 *
 * Two evaluation paths share the same arithmetic (DESIGN.md §15):
 * `evaluate()` is the from-scratch reference (O(decided x W x H)),
 * and `EvalAccumulator` (eval_accumulator.hh) scores near-identical
 * selections in O(changed CBs) by combining memoized per-(CB, group)
 * contributions. Every partial quantity the two paths accumulate is
 * an exactly-representable multiple of 0.5, so the paths agree on
 * every metric bit for bit — not approximately.
 */

#ifndef EQX_CORE_EVALUATION_HH
#define EQX_CORE_EVALUATION_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/geometry.hh"
#include "common/types.hh"
#include "core/eir_problem.hh"

namespace eqx {

/** Relative weights of the four evaluation metrics. */
struct EvalWeights
{
    double load = 1.0;
    double hops = 1.0;
    double crossings = 4.0; ///< weighted up: intersections cost RDLs
    double length = 0.2;
    /**
     * Penalty on the fraction of links longer than the 1-cycle
     * interposer reach (they would need repeaters and an active
     * interposer, paper Section 3.2.3). Together with `length` this
     * refines the paper's fourth "link length" metric.
     */
    double repeaters = 3.0;
};

/** The four raw metrics plus the combined score. */
struct EvalBreakdown
{
    double maxLoad = 0.0;   ///< heaviest injection point (PE-equivalents)
    double avgHops = 0.0;   ///< policy-weighted mean hops CB->PE
    int crossings = 0;      ///< RDL wire cross-points
    double totalLength = 0; ///< sum of link Manhattan spans
    double repeaterFrac = 0; ///< links longer than the 1-cycle reach
    double score = 0.0;     ///< weighted normalized sum (lower = better)
};

/**
 * One CB's complete, selection-independent effect on the evaluation:
 * injection-point load deltas (at most the group tiles plus the CB
 * itself), hop partial sums, and the group's interposer link segments
 * with their length/reach facts. Contributions are independent per CB
 * and every double in them is an exact multiple of 0.5, so they can
 * be added to and removed from a running total without drift.
 */
struct EvalContribution
{
    struct TileLoad
    {
        Coord tile;
        double load = 0.0; ///< injected PE-equivalents at this tile
        int count = 0;     ///< number of flows contributing (>= 1)
    };

    std::vector<TileLoad> loads; ///< only tiles with count > 0
    double hopSum = 0.0;
    double hopWeight = 0.0;
    std::vector<Segment> links;  ///< CB -> EIR wire segments
    double lengthHops = 0.0;     ///< sum of link Manhattan spans
    int overReach = 0;           ///< links beyond the 1-cycle reach
};

/**
 * Evaluates (partial or full) EIR selections for one problem.
 *
 * All selection-independent state — the CB occupancy bitmap, the
 * hot-zone contention factors, and the normalizers — is built once in
 * the constructor. Per-(CB, canonical group) contributions are served
 * from a content-addressed memo, so repeated rollouts of the same
 * group cost a hash lookup instead of a W x H scan.
 *
 * Not thread-safe: the memo mutates under const calls. Give each
 * worker its own evaluator (as the design flow already does).
 */
class EirEvaluator
{
  public:
    /** Longest link span that fits one interposer cycle (paper: 2). */
    static constexpr int kReachHops = 2;

    explicit EirEvaluator(const EirProblem *problem,
                          EvalWeights weights = {});

    /**
     * Evaluate a selection from scratch. Partial selections (fewer
     * groups than CBs) are allowed during search: missing CBs inject
     * locally only. This is the reference path the incremental
     * accumulator is tested bit-identical against.
     */
    EvalBreakdown evaluate(const EirSelection &sel) const;

    /** Score only (convenience for the search loops). */
    double score(const EirSelection &sel) const
    {
        return evaluate(sel).score;
    }

    /**
     * CB @p cb_idx's contribution when assigned @p group (group order
     * is significant: the Buffer Selection policy prefers earlier
     * listed EIRs on ties). Memoized; the returned reference is valid
     * until the next contribution() call (the memo may decline to
     * retain an entry once kMemoCap entries are cached).
     */
    const EvalContribution &
    contribution(int cb_idx, const std::vector<Coord> &group) const;

    const EvalWeights &weights() const { return weights_; }
    const EirProblem *problem() const { return prob_; }

    /** Hot-zone contention factor of a tile (1.0 for CB tiles). */
    double
    loadFactor(const Coord &c) const
    {
        return loadFactor_[static_cast<std::size_t>(c.y * w_ + c.x)];
    }

    /** True if the tile holds a CB. */
    bool
    isCb(const Coord &c) const
    {
        return cbMask_[static_cast<std::size_t>(c.y * w_ + c.x)] != 0;
    }

    /** Memo observability (for the bench and the equivalence tests). */
    std::uint64_t memoHits() const { return memoHits_; }
    std::uint64_t memoMisses() const { return memoMisses_; }
    std::size_t memoEntries() const { return memo_.size(); }

  private:
    friend class EvalAccumulator;

    /** Contribution cache cap; beyond it, misses compute into scratch. */
    static constexpr std::size_t kMemoCap = 1u << 18;

    struct MemoKey
    {
        int cb;
        std::vector<Coord> group;
        bool
        operator==(const MemoKey &o) const
        {
            return cb == o.cb && group == o.group;
        }
    };
    struct MemoKeyHash
    {
        std::size_t
        operator()(const MemoKey &k) const
        {
            // FNV-1a over the CB index and the ordered tile sequence.
            std::uint64_t h = 1469598103934665603ULL;
            auto mix = [&h](std::uint64_t v) {
                h ^= v;
                h *= 1099511628211ULL;
            };
            mix(static_cast<std::uint64_t>(k.cb));
            for (const auto &c : k.group)
                mix((static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(c.y))
                     << 32) |
                    static_cast<std::uint32_t>(c.x));
            return static_cast<std::size_t>(h);
        }
    };

    /** Compute a contribution without touching the memo. */
    void computeContribution(int cb_idx, const std::vector<Coord> &group,
                             EvalContribution &out) const;

    /**
     * The shared final reduction: per-tile loads (in Coord order, the
     * same order the from-scratch std::map iterates) through the
     * contention factors into maxLoad / mean load, plus the
     * normalized score. Both evaluation paths end here, so a
     * bit-identical input yields a bit-identical EvalBreakdown.
     */
    EvalBreakdown
    finish(const std::vector<std::pair<Coord, double>> &loads,
           double hop_sum, double hop_weight, int crossings,
           double total_length, std::size_t num_links,
           int over_reach) const;

    const EirProblem *prob_;
    EvalWeights weights_;
    int w_;
    int h_;
    double hopRef_;   ///< baseline mean CB->PE distance (no EIRs)
    double loadRef_;  ///< PEs per CB if all traffic used one point
    std::vector<std::uint8_t> cbMask_;  ///< CB occupancy, row-major
    std::vector<double> loadFactor_;    ///< 1 + 0.3 x hot coverage
    mutable std::unordered_map<MemoKey, EvalContribution, MemoKeyHash>
        memo_;
    mutable EvalContribution scratch_; ///< overflow result past the cap
    mutable std::uint64_t memoHits_ = 0;
    mutable std::uint64_t memoMisses_ = 0;
};

} // namespace eqx

#endif // EQX_CORE_EVALUATION_HH
