/**
 * @file
 * The MCTS evaluation function (paper Section 4.3): four normalized
 * metrics — max injection-point traffic load, average hop count, RDL
 * intersection count and total interposer link length — summed into a
 * single score (lower is better). The load/hop estimates follow the
 * Buffer Selection policy exactly, assuming uniform per-PE demand.
 */

#ifndef EQX_CORE_EVALUATION_HH
#define EQX_CORE_EVALUATION_HH

#include <vector>

#include "common/types.hh"
#include "core/eir_problem.hh"

namespace eqx {

/** Relative weights of the four evaluation metrics. */
struct EvalWeights
{
    double load = 1.0;
    double hops = 1.0;
    double crossings = 4.0; ///< weighted up: intersections cost RDLs
    double length = 0.2;
    /**
     * Penalty on the fraction of links longer than the 1-cycle
     * interposer reach (they would need repeaters and an active
     * interposer, paper Section 3.2.3). Together with `length` this
     * refines the paper's fourth "link length" metric.
     */
    double repeaters = 3.0;
};

/** The four raw metrics plus the combined score. */
struct EvalBreakdown
{
    double maxLoad = 0.0;   ///< heaviest injection point (PE-equivalents)
    double avgHops = 0.0;   ///< policy-weighted mean hops CB->PE
    int crossings = 0;      ///< RDL wire cross-points
    double totalLength = 0; ///< sum of link Manhattan spans
    double repeaterFrac = 0; ///< links longer than the 1-cycle reach
    double score = 0.0;     ///< weighted normalized sum (lower = better)
};

/** Evaluates (partial or full) EIR selections for one problem. */
class EirEvaluator
{
  public:
    explicit EirEvaluator(const EirProblem *problem,
                          EvalWeights weights = {});

    /**
     * Evaluate a selection. Partial selections (fewer groups than CBs)
     * are allowed during search: missing CBs inject locally only.
     */
    EvalBreakdown evaluate(const EirSelection &sel) const;

    /** Score only (convenience for the search loops). */
    double score(const EirSelection &sel) const
    {
        return evaluate(sel).score;
    }

    const EvalWeights &weights() const { return weights_; }

  private:
    const EirProblem *prob_;
    EvalWeights weights_;
    double hopRef_;   ///< baseline mean CB->PE distance (no EIRs)
    double loadRef_;  ///< PEs per CB if all traffic used one point
};

} // namespace eqx

#endif // EQX_CORE_EVALUATION_HH
