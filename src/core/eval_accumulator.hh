/**
 * @file
 * Incremental evaluation of EIR selections (DESIGN.md §15). A search
 * rollout changes exactly one CB group at a time, yet the from-scratch
 * evaluator rescans the full W x H grid for every decided CB on every
 * call. The accumulator keeps the running totals — per-tile injection
 * loads, hop partial sums, the pairwise crossing count and the link
 * length/reach facts — and updates them in O(changed CB) per push,
 * pop or replace, serving the per-(CB, group) deltas from the
 * evaluator's contribution memo.
 *
 * Exactness contract: every accumulated double is a multiple of 0.5
 * far below 2^52, so IEEE addition and subtraction are exact and the
 * totals after any push/pop/setGroup sequence equal the from-scratch
 * sums bit for bit. The final reduction (hot-zone factors, divisions,
 * the weighted score) runs through the same EirEvaluator::finish the
 * from-scratch path uses, over tiles in the same Coord order, so
 * EvalBreakdowns — scores included — are bit-identical doubles.
 */

#ifndef EQX_CORE_EVAL_ACCUMULATOR_HH
#define EQX_CORE_EVAL_ACCUMULATOR_HH

#include <utility>
#include <vector>

#include "common/geometry.hh"
#include "common/tile_mask.hh"
#include "core/evaluation.hh"

namespace eqx {

/**
 * Running evaluation state over a prefix of decided CBs.
 *
 * Decided CBs always form the prefix 0..depth()-1, mirroring the
 * partial-selection semantics of EirEvaluator::evaluate: push() adds
 * a group for the next undecided CB, pop() retracts the most recent
 * one (tree-search descend/backtrack), and setGroup() replaces a
 * decided CB's group in place (annealing / polish moves).
 *
 * Undecided CBs carry their empty-group (all-local) contribution, the
 * same reading the from-scratch path gives a selection padded with
 * empty groups: push() swaps a CB's empty contribution for its group
 * contribution, pop() swaps it back. evaluate() at any depth therefore
 * matches evaluate(prefix padded with empty groups) bit for bit, and
 * an untouched accumulator reports the all-local design.
 */
class EvalAccumulator
{
  public:
    explicit EvalAccumulator(const EirEvaluator *eval);

    /** Decide the next CB (cb_idx must equal depth()). */
    void push(int cb_idx, std::vector<Coord> group);

    /** Undo the most recent push (or the most recent commit level). */
    void pop();

    /** Replace decided CB @p cb_idx's group in place. */
    void setGroup(int cb_idx, std::vector<Coord> group);

    /** Retract every decision. */
    void reset();

    /** Number of decided CBs (always a prefix of the CB order). */
    std::size_t depth() const { return groups_.size(); }

    /** Decided CB @p cb_idx's current group. */
    const std::vector<Coord> &
    group(int cb_idx) const
    {
        return groups_[static_cast<std::size_t>(cb_idx)];
    }

    /** The decided prefix as a selection (copies the groups). */
    EirSelection selection() const { return groups_; }

    /**
     * Tiles taken by the decided groups (not the CBs themselves) —
     * the incremental replacement for flattening a partial selection
     * with takenOf() on every rollout step.
     */
    const TileMask &takenMask() const { return taken_; }

    /**
     * The breakdown of the current prefix; bit-identical to
     * evaluate(selection()) on the underlying evaluator. O(loaded
     * tiles + links), independent of W x H.
     */
    EvalBreakdown evaluate() const;

    /** Score only. */
    double score() const { return evaluate().score; }

  private:
    void apply(int cb_idx, const EvalContribution &c);
    void unapply(int cb_idx, const EvalContribution &c);

    const EirEvaluator *eval_;
    int w_;
    int h_;

    EirSelection groups_; ///< decided prefix

    // Per-tile injection loads, grid-indexed, plus the row-major
    // sorted index list of loaded tiles. Row-major order is exactly
    // Coord's (y, x) ordering, so iterating active_ visits tiles in
    // the same order the from-scratch std::map does.
    std::vector<double> load_;
    std::vector<int> loadCount_;
    std::vector<int> active_;

    double hopSum_ = 0.0;
    double hopWeight_ = 0.0;
    CrossingLedger ledger_;
    double lengthHops_ = 0.0;
    std::size_t numLinks_ = 0;
    int overReach_ = 0;
    TileMask taken_;

    mutable std::vector<std::pair<Coord, double>> loadScratch_;
};

} // namespace eqx

#endif // EQX_CORE_EVAL_ACCUMULATOR_HH
