/**
 * @file
 * Search algorithms over the EIR design space. The paper's method is
 * Monte Carlo Tree Search (Section 4.3); greedy, random, simulated
 * annealing and genetic baselines are provided for the search-method
 * discussion and the ablation benches.
 */

#ifndef EQX_CORE_SEARCH_HH
#define EQX_CORE_SEARCH_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/tile_mask.hh"
#include "core/eir_problem.hh"
#include "core/evaluation.hh"

namespace eqx {

/** Outcome common to every search method. */
struct SearchResult
{
    EirSelection selection;
    EvalBreakdown eval;
    std::uint64_t evaluations = 0; ///< evaluation-function invocations
    std::string method;
};

/**
 * Pick a uniformly random legal group for one CB: visit the direction
 * octants in random order, taking a random free candidate from each
 * with probability take_prob, up to the group-size limit. The mask
 * overload is the hot-loop form (O(1) taken tests against an
 * incrementally maintained mask, e.g. EvalAccumulator::takenMask());
 * the vector overload flattens into a mask first and draws the same
 * groups from the same Rng stream.
 */
std::vector<Coord> randomGroup(const EirProblem &prob, int cb_idx,
                               const TileMask &taken, Rng &rng,
                               double take_prob = 0.85);
std::vector<Coord> randomGroup(const EirProblem &prob, int cb_idx,
                               const std::vector<Coord> &taken, Rng &rng,
                               double take_prob = 0.85);

/** Parameters of the MCTS search. */
struct MctsParams
{
    int iterationsPerLevel = 600; ///< tree iterations before committing
    double ucbC = 0.7;            ///< UCB exploration constant
    int maxChildrenPerNode = 64;  ///< sampled expansion width
    std::uint64_t seed = 1;
};

/**
 * The paper's MCTS: group-per-CB expansion (tree depth = #CBs), UCB
 * selection, random rollout, 4-metric evaluation backpropagation.
 * After each level's iteration budget, the best level child is
 * committed and search continues from the extended root state.
 */
SearchResult mctsSearch(const EirProblem &prob, const EirEvaluator &eval,
                        const MctsParams &params = {});

/** Greedy: per CB, take the enumerated group with the best score. */
SearchResult greedySearch(const EirProblem &prob,
                          const EirEvaluator &eval,
                          std::size_t max_groups_per_cb = 4096);

/** Pure random sampling of full selections. */
SearchResult randomSearch(const EirProblem &prob, const EirEvaluator &eval,
                          int trials, std::uint64_t seed = 1);

/** Simulated annealing over single-CB group re-picks. */
struct AnnealParams
{
    int steps = 4000;
    double tStart = 0.5;
    double tEnd = 0.005;
    std::uint64_t seed = 1;
};
SearchResult annealSearch(const EirProblem &prob, const EirEvaluator &eval,
                          const AnnealParams &params = {});

/**
 * Local polish: per-CB best-response sweeps until a fixed point (or
 * max_passes). Used by the design flow after the global search to
 * squeeze out residual crossings / over-length links.
 */
SearchResult polishSelection(const EirProblem &prob,
                             const EirEvaluator &eval,
                             EirSelection start, int max_passes = 4,
                             std::size_t max_groups_per_cb = 1024);

/** Genetic algorithm with per-CB crossover and conflict repair. */
struct GeneticParams
{
    int population = 32;
    int generations = 60;
    double mutationRate = 0.25;
    std::uint64_t seed = 1;
};
SearchResult geneticSearch(const EirProblem &prob,
                           const EirEvaluator &eval,
                           const GeneticParams &params = {});

} // namespace eqx

#endif // EQX_CORE_SEARCH_HH
