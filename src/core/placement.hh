/**
 * @file
 * Last-level cache-bank (CB) placements on the mesh: the four classic
 * layouts the paper analyses (Top, Side, Diagonal, Diamond, from Abts
 * et al.) plus accessors shared by the N-Queen machinery.
 */

#ifndef EQX_CORE_PLACEMENT_HH
#define EQX_CORE_PLACEMENT_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace eqx {

/** Known CB placement strategies (paper Fig. 4). */
enum class PlacementKind : std::uint8_t
{
    Top,      ///< CBs along the top row
    Side,     ///< CBs split between the left and right columns
    Diagonal, ///< CBs on the main diagonal
    Diamond,  ///< permutation layout with diagonal-adjacent CBs
    NQueen,   ///< paper's contention-aware placement (Section 4.2)
};

const char *placementName(PlacementKind k);

/**
 * Generate the classic placements for a w x h mesh with num_cbs cache
 * banks. NQueen is produced by the solver in nqueen.hh, not here.
 */
std::vector<Coord> makePlacement(PlacementKind kind, int width, int height,
                                 int num_cbs);

/** True if no two CBs share a row or a column. */
bool isPermutationPlacement(const std::vector<Coord> &cbs);

/** True if no two CBs share any diagonal (N-Queen property). */
bool isDiagonalFree(const std::vector<Coord> &cbs);

/** True if some pair of CBs are diagonal neighbours (Chebyshev 1). */
bool hasDiagonalAdjacency(const std::vector<Coord> &cbs);

/** Render the placement as an ASCII grid ('C' = cache bank). */
std::string placementAscii(const std::vector<Coord> &cbs, int width,
                           int height);

} // namespace eqx

#endif // EQX_CORE_PLACEMENT_HH
