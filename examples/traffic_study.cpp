/**
 * @file
 * Synthetic-traffic study: latency-throughput curves of the reply
 * network under the few-to-many pattern, with and without EIRs, plus
 * a uniform-random reference — the classic NoC characterization view
 * of the injection bottleneck the paper attacks.
 *
 * Usage: traffic_study [seed=1] [points=8]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/design_flow.hh"
#include "sim/synthetic.hh"

using namespace eqx;

namespace {

void
sweep(const char *label, const SyntheticParams &base, int points,
      double max_rate)
{
    std::printf("\n%s\n", label);
    std::printf("%10s %12s %12s %12s\n", "rate", "throughput",
                "latency", "queue-lat");
    for (int i = 1; i <= points; ++i) {
        SyntheticParams sp = base;
        sp.injectionRate = max_rate * i / points;
        SyntheticResult r = runSynthetic(sp);
        std::printf("%10.3f %12.3f %12.1f %12.1f\n", sp.injectionRate,
                    r.throughput, r.avgTotalLatency,
                    r.avgQueueLatency);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    std::vector<std::string> toks;
    for (int i = 1; i < argc; ++i)
        toks.emplace_back(argv[i]);
    cfg.parseArgs(toks);
    int points = static_cast<int>(cfg.getInt("points", 8));
    std::uint64_t seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));

    // The EquiNox design supplies placement and EIR groups.
    DesignParams dp;
    dp.seed = seed;
    EquiNoxDesign design = buildEquiNoxDesign(dp);

    SyntheticParams base;
    base.cbs = design.cbs;
    base.pattern = TrafficPattern::FewToMany;
    base.warmupCycles = 1500;
    base.measureCycles = 6000;
    base.seed = seed;

    sweep("few-to-many replies, plain reply network", base, points,
          0.9);

    SyntheticParams eir = base;
    eir.eirGroups = design.eirGroupsByNode();
    sweep("few-to-many replies, EquiNox EIRs deployed", eir, points,
          0.9);

    SyntheticParams uni = base;
    uni.pattern = TrafficPattern::Uniform;
    uni.packetBits = 128;
    sweep("uniform random, single-flit packets (reference)", uni,
          points, 0.25);

    std::printf("\n(rate = packets/cycle per source; few-to-many "
                "sources are the %zu CBs.)\n",
                base.cbs.size());
    return 0;
}
