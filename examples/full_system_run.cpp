/**
 * @file
 * Run one benchmark on all seven schemes and dump the full metric set:
 * cycles, IPC, latency decomposition, energy breakdown, area, traffic
 * mix, and per-component diagnostics.
 *
 * Usage: full_system_run [benchmark=kmeans] [scale=0.3] [seed=1]
 *                        [scheme=<name>] [verbose=true]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/experiment.hh"

using namespace eqx;

namespace {

void
dumpRun(const std::string &scheme, const RunResult &r, const System *sys)
{
    std::printf("\n--- %s ---\n", scheme.c_str());
    std::printf("completed=%d cycles=%llu exec=%.1f ns insts=%llu "
                "ipc=%.2f\n",
                r.completed ? 1 : 0,
                static_cast<unsigned long long>(r.cycles), r.execNs,
                static_cast<unsigned long long>(r.totalInsts), r.ipc);
    std::printf("energy=%.1f nJ (buf %.1f, xbar %.1f, alloc %.1f, "
                "link %.1f, intp %.1f, leak %.1f)\n",
                r.energyPj / 1e3, r.energy.buffer / 1e3,
                r.energy.crossbar / 1e3, r.energy.allocators / 1e3,
                r.energy.links / 1e3, r.energy.interposerLinks / 1e3,
                r.energy.leakage / 1e3);
    std::printf("edp=%.3g pJ*ns  area=%.2f mm^2\n", r.edp, r.areaMm2);
    std::printf("latency ns/packet: req q=%.2f n=%.2f | rep q=%.2f "
                "n=%.2f (req pkts=%llu rep pkts=%llu)\n",
                r.reqQueueNs, r.reqNetNs, r.repQueueNs, r.repNetNs,
                static_cast<unsigned long long>(r.reqPackets),
                static_cast<unsigned long long>(r.repPackets));
    double total_bits =
        static_cast<double>(r.requestBits + r.replyBits);
    if (total_bits > 0)
        std::printf("traffic mix: reply %.1f%% of bits\n",
                    100.0 * static_cast<double>(r.replyBits) /
                        total_bits);

    if (sys) {
        for (int i = 0; i < sys->numNetworks(); ++i) {
            const Network &net = sys->network(i);
            const auto &a = net.activity();
            std::printf("  net[%d] %-10s flits(buf)=%llu links=%llu "
                        "intp=%llu heatvar=%.2f\n",
                        i, net.params().name.c_str(),
                        static_cast<unsigned long long>(a.bufferWrites),
                        static_cast<unsigned long long>(a.linkFlits),
                        static_cast<unsigned long long>(
                            a.interposerLinkFlits),
                        net.residenceVariance());
        }
        for (int i = 0; i < sys->numCacheBanks(); ++i) {
            const auto &cb = sys->cacheBank(i);
            std::printf("  cb[%d] node=%d l2hit=%llu l2miss=%llu "
                        "stall_reply=%g stall_mshr=%g\n",
                        i, cb.node(),
                        static_cast<unsigned long long>(cb.l2().hits()),
                        static_cast<unsigned long long>(
                            cb.l2().misses()),
                        cb.stats().get("stall_reply_queue"),
                        cb.stats().get("stall_mshr_full"));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    std::vector<std::string> toks;
    for (int i = 1; i < argc; ++i)
        toks.emplace_back(argv[i]);
    cfg.parseArgs(toks);

    WorkloadProfile wp = workloadByName(
        cfg.getString("benchmark", "kmeans"));
    wp.instsPerPe = static_cast<std::uint64_t>(
        static_cast<double>(wp.instsPerPe) * cfg.getDouble("scale", 0.3));

    // The paper's seven by default; scheme= picks any registered
    // scheme through the SchemeRegistry (name or alias, any case —
    // unknown keys abort with the registered key list).
    std::vector<std::string> schemes = paperSchemeNames();
    if (cfg.has("scheme"))
        schemes = {SchemeRegistry::instance()
                       .byName(cfg.getString("scheme"))
                       .name()};

    std::printf("benchmark=%s instsPerPe=%llu\n", wp.name.c_str(),
                static_cast<unsigned long long>(wp.instsPerPe));

    // Build one EquiNox design shared across runs.
    DesignParams dp;
    dp.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    EquiNoxDesign design = buildEquiNoxDesign(dp);

    for (const std::string &s : schemes) {
        SystemConfig sc;
        sc.schemeKey = s;
        sc.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
        if (SchemeRegistry::instance().byName(s).usesEquiNoxDesign())
            sc.preDesign = &design;
        System sys(sc, wp);
        RunResult r = sys.run();
        dumpRun(s, r, cfg.getBool("verbose", false) ? &sys : nullptr);
    }
    return 0;
}
