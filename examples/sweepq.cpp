/**
 * @file
 * sweepq: minimal sweepd client. Sends one query over the daemon's
 * Unix-domain socket and prints the streamed response lines to
 * stdout.
 *
 * Usage (key=value args):
 *   sweepq socket=/tmp/eqx-sweepd.sock \
 *          [cmd=cells] [scheme=EquiNox,SingleBase] \
 *          [benchmarks=bfs,hotspot] [seed=N]
 *
 *   cmd=ping | stats | cells | shutdown    (default cells)
 *
 * Exit status: 0 when the daemon answered the query ({"done":...} for
 * cells, {"ok":true} otherwise), 1 on connection or protocol failure.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

#include "common/config.hh"
#include "runner/jsonl.hh"
#include "sweep/record_io.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg;
    std::vector<std::string> toks;
    for (int i = 1; i < argc; ++i)
        toks.emplace_back(argv[i]);
    cfg.parseArgs(toks);

    std::string path = cfg.getString("socket", "/tmp/eqx-sweepd.sock");
    std::string cmd = cfg.getString("cmd", "cells");

    JsonObject q;
    q.field("cmd", cmd);
    if (cfg.has("scheme"))
        q.field("schemes", cfg.getString("scheme"));
    if (cfg.has("benchmarks"))
        q.field("benchmarks", cfg.getString("benchmarks"));
    if (cfg.has("seed"))
        q.field("seed",
                static_cast<std::uint64_t>(cfg.getInt("seed", 1)));

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "sweepq: socket path too long\n");
        return 1;
    }
    std::strcpy(addr.sun_path, path.c_str());

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)) != 0) {
        std::fprintf(stderr, "sweepq: cannot connect to %s\n",
                     path.c_str());
        if (fd >= 0)
            ::close(fd);
        return 1;
    }

    std::string line = q.str() + '\n';
    if (::send(fd, line.data(), line.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(line.size())) {
        std::fprintf(stderr, "sweepq: send failed\n");
        ::close(fd);
        return 1;
    }
    // Half-close: the daemon sees EOF after our single query and
    // closes the connection once the response is streamed.
    ::shutdown(fd, SHUT_WR);

    bool answered = false;
    std::string buf;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string resp = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            std::printf("%s\n", resp.c_str());
            JsonFields fields;
            if (parseFlatJson(resp, fields)) {
                auto done = fields.find("done");
                auto ok = fields.find("ok");
                if (done != fields.end() && done->second.asBool())
                    answered = true;
                else if (cmd != "cells" && ok != fields.end() &&
                         ok->second.asBool())
                    answered = true;
            }
        }
    }
    ::close(fd);
    return answered ? 0 : 1;
}
