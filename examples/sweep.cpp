/**
 * @file
 * End-to-end multi-threaded sweep over the (scheme x benchmark)
 * matrix via the src/runner JobPool. Demonstrates every engine
 * feature: worker fan-out, deterministic results, per-job timeouts
 * with retry, failed-cell reporting, the progress ticker, and
 * streaming JSONL export alongside the classic CSV.
 *
 * Usage (key=value args):
 *   sweep [workers=0] [benchmarks=8] [scale=0.2] [seed=1]
 *         [scheme=key,key,...] [timeout=0] [retries=1] [progress=1]
 *         [jsonl=out.jsonl] [csv=out.csv]
 *         [decorrelate=0] [verify=0] [warmup=0] [metrics=0]
 *         [cache=dir] [journal=path] [resume=0] [shard=i/N]
 *         [digest=0]
 *   sweep merge=a.jnl,b.jnl out=merged.jsonl [gaps=0]
 *
 *   scheme=...     restrict the sweep to these SchemeRegistry keys
 *                  (names or aliases, any case); default is the
 *                  paper's seven schemes
 *   workers=0      use all hardware threads (1 = serial)
 *   timeout=SEC    per-job wall-clock timeout (0 = off; keeping it
 *                  off preserves bit-for-bit determinism)
 *   decorrelate=1  per-cell Rng streams from (seed, scheme, benchmark)
 *   verify=1       re-run serially and check bit-identical results
 *   warmup=N       reset NoC stats at core cycle N so latency numbers
 *                  exclude the cold-start transient
 *   metrics=1      collect the per-router / per-NI observability
 *                  snapshot per cell ("m."-prefixed JSONL keys) and
 *                  print a per-scheme digest
 *
 * Sweep fabric (src/sweep, DESIGN.md §13):
 *   cache=DIR      content-addressed cell cache: cells whose digest
 *                  is stored are served without simulating; repeated
 *                  identical sweeps simulate nothing
 *   journal=PATH   write-ahead journal of this run's cells
 *   resume=1       recover an existing journal (skip its cells)
 *                  instead of truncating it
 *   shard=i/N      run only the cells shard i of N owns; the split
 *                  is a pure function of (seed, scheme, benchmark)
 *   digest=1       dry run: list every cell's digest (and owning
 *                  shard under shard=i/N), simulate nothing
 *   merge=A,B,...  merge shard journals into canonical JSONL at
 *                  out= (default merged.jsonl); gaps=1 tolerates an
 *                  incomplete shard set
 *
 * Exit status: 0 only when every requested cell succeeded (and, with
 * verify=1, matched the serial reference; with merge=, the merge was
 * complete and consistent).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "runner/job_pool.hh"
#include "sim/experiment.hh"
#include "sweep/shard.hh"
#include "sweep/sweep_runner.hh"

using namespace eqx;

namespace {

std::vector<std::string>
splitCommas(const std::string &spec)
{
    std::vector<std::string> out;
    for (std::size_t start = 0; start <= spec.size();) {
        std::size_t comma = spec.find(',', start);
        std::size_t len =
            comma == std::string::npos ? std::string::npos : comma - start;
        std::string item = spec.substr(start, len);
        if (!item.empty())
            out.push_back(std::move(item));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

bool
sameRunResult(const RunResult &a, const RunResult &b)
{
    return a.completed == b.completed && a.cycles == b.cycles &&
           a.execNs == b.execNs && a.totalInsts == b.totalInsts &&
           a.ipc == b.ipc && a.energyPj == b.energyPj &&
           a.edp == b.edp && a.areaMm2 == b.areaMm2 &&
           a.reqQueueNs == b.reqQueueNs && a.reqNetNs == b.reqNetNs &&
           a.repQueueNs == b.repQueueNs && a.repNetNs == b.repNetNs &&
           a.reqPackets == b.reqPackets && a.repPackets == b.repPackets &&
           a.requestBits == b.requestBits && a.replyBits == b.replyBits &&
           a.reqP50Ns == b.reqP50Ns && a.reqP95Ns == b.reqP95Ns &&
           a.reqP99Ns == b.reqP99Ns && a.repP50Ns == b.repP50Ns &&
           a.repP95Ns == b.repP95Ns && a.repP99Ns == b.repP99Ns &&
           a.maxEirLoadPackets == b.maxEirLoadPackets &&
           a.metrics.all() == b.metrics.all();
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    std::vector<std::string> toks;
    for (int i = 1; i < argc; ++i)
        toks.emplace_back(argv[i]);
    cfg.parseArgs(toks);

    if (cfg.has("merge")) {
        std::vector<std::string> inputs =
            splitCommas(cfg.getString("merge"));
        std::string out = cfg.getString("out", "merged.jsonl");
        MergeResult mr =
            mergeJournals(inputs, out, cfg.getBool("gaps", false));
        if (!mr.ok()) {
            std::fprintf(stderr, "merge failed: %s\n", mr.error.c_str());
            return 1;
        }
        std::printf("merged %zu cells from %zu journal(s) into %s\n",
                    mr.cells, mr.inputs, out.c_str());
        return 0;
    }

    ExperimentConfig ec;
    ec.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    ec.instScale = cfg.getDouble("scale", 0.2);
    ec.workloads = workloadSubset(
        static_cast<std::size_t>(cfg.getInt("benchmarks", 8)));
    ec.workers = static_cast<int>(cfg.getInt("workers", 0));
    ec.jobTimeoutSec = cfg.getDouble("timeout", 0);
    ec.jobRetries = static_cast<int>(cfg.getInt("retries", 1));
    ec.progress = cfg.getBool("progress", true);
    ec.jsonlPath = cfg.getString("jsonl", "");
    ec.decorrelateSeeds = cfg.getBool("decorrelate", false);
    ec.warmupCycles = static_cast<Cycle>(cfg.getInt("warmup", 0));
    ec.collectMetrics = cfg.getBool("metrics", false);
    if (cfg.has("scheme")) {
        // Resolve each comma-separated key through the SchemeRegistry
        // (case-insensitive names or aliases; unknown keys are fatal).
        ec.schemes.clear();
        std::string spec = cfg.getString("scheme");
        for (std::size_t start = 0; start <= spec.size();) {
            std::size_t comma = spec.find(',', start);
            std::size_t len = comma == std::string::npos
                                  ? std::string::npos
                                  : comma - start;
            std::string key = spec.substr(start, len);
            if (!key.empty())
                ec.schemes.push_back(
                    SchemeRegistry::instance().byName(key).name());
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
    }

    SweepOptions so;
    so.cacheDir = cfg.getString("cache", "");
    so.journalPath = cfg.getString("journal", "");
    so.resume = cfg.getBool("resume", false);
    std::string shard_spec = cfg.getString("shard", "");
    if (!shard_spec.empty() &&
        !parseShardSpec(shard_spec, so.shardIndex, so.shardCount))
        eqx_fatal("bad shard= spec '", shard_spec,
                  "' (want i/N with 0 <= i < N)");
    if (so.resume && so.journalPath.empty())
        eqx_fatal("resume=1 needs journal=<path>");

    if (cfg.getBool("digest", false)) {
        // Dry run: identity only, nothing simulated.
        auto ids = listCellDigests(ec, so.shardCount);
        std::printf("%5s %-18s %-16s %5s  %s\n", "cell", "scheme",
                    "benchmark", "shard", "digest");
        for (const auto &id : ids)
            std::printf("%5zu %-18s %-16s %5d  %s\n", id.index,
                        id.scheme.c_str(), id.benchmark.c_str(),
                        id.shard, id.digest.hex().c_str());
        std::printf("%zu cells, schema v%d\n", ids.size(),
                    kSweepSchemaVersion);
        return 0;
    }

    int workers = resolveWorkerCount(ec.workers);
    std::printf("sweep: %zu benchmarks x %zu schemes = %zu cells on "
                "%d worker%s\n",
                ec.workloads.size(), ec.schemes.size(),
                ec.workloads.size() * ec.schemes.size(), workers,
                workers == 1 ? "" : "s");

    auto t0 = std::chrono::steady_clock::now();
    std::vector<CellResult> cells;
    if (so.enabled()) {
        SweepOutcome out = runSweep(ec, so);
        std::printf("sweep fabric: %zu/%zu cells (shard %d/%d), "
                    "%zu journal + %zu cache served, %zu simulated\n",
                    out.shardCells, out.totalCells, so.shardIndex,
                    so.shardCount, out.journalHits, out.cacheHits,
                    out.simulated);
        cells = std::move(out.cells);
    } else {
        ExperimentRunner runner(ec);
        cells = runner.runMatrix();
    }
    auto t1 = std::chrono::steady_clock::now();
    double wall_s = std::chrono::duration<double>(t1 - t0).count();

    std::size_t failed = 0;
    double cpu_ms = 0;
    for (const auto &c : cells) {
        failed += c.failed ? 1u : 0u;
        cpu_ms += c.wallMs;
        if (c.failed)
            std::printf("  FAILED %s/%s after %d attempt(s)%s%s\n",
                        c.benchmark.c_str(), c.scheme.c_str(),
                        c.attempts, c.error.empty() ? "" : ": ",
                        c.error.c_str());
    }
    std::printf("sweep finished in %.2f s wall (%.2f s of simulation "
                "across workers, %.2fx concurrency), %zu/%zu cells "
                "failed\n",
                wall_s, cpu_ms / 1000.0,
                wall_s > 0 ? cpu_ms / 1000.0 / wall_s : 0.0, failed,
                cells.size());

    if (cfg.has("csv")) {
        writeCellsCsv(cells, cfg.getString("csv"));
        std::printf("wrote %s\n", cfg.getString("csv").c_str());
    }
    if (!ec.jsonlPath.empty())
        std::printf("streamed %zu JSONL records to %s\n", cells.size(),
                    ec.jsonlPath.c_str());

    // Normalize to SingleBase when swept, else to the first scheme
    // (a scheme= restriction may exclude the paper's baseline).
    std::string baseline = "SingleBase";
    if (std::find(ec.schemes.begin(), ec.schemes.end(), baseline) ==
        ec.schemes.end())
        baseline = ec.schemes.front();
    printNormalizedTable(cells, ec.schemes, "execution time",
                         [](const RunResult &r) { return r.execNs; },
                         baseline);

    if (ec.collectMetrics) {
        // Per-scheme digest of the observability snapshot: tail
        // latency and the measured max injection-point (EIR) load.
        std::printf("\nmetrics digest (warmup=%llu)\n",
                    static_cast<unsigned long long>(ec.warmupCycles));
        std::printf("%-18s %10s %10s %10s %12s %10s\n", "scheme",
                    "rep-p50", "rep-p95", "rep-p99", "max-eir-load",
                    "m-keys");
        for (const std::string &s : ec.schemes) {
            double p50 = 0, p95 = 0, p99 = 0;
            std::uint64_t max_eir = 0;
            std::size_t keys = 0;
            int n = 0;
            for (const auto &c : cells) {
                if (c.scheme != s)
                    continue;
                p50 += c.result.repP50Ns;
                p95 += c.result.repP95Ns;
                p99 += c.result.repP99Ns;
                max_eir =
                    std::max(max_eir, c.result.maxEirLoadPackets);
                keys = std::max(keys, c.result.metrics.all().size());
                ++n;
            }
            std::printf("%-18s %10.2f %10.2f %10.2f %12llu %10zu\n",
                        s.c_str(), p50 / n, p95 / n, p99 / n,
                        static_cast<unsigned long long>(max_eir), keys);
        }
    }

    if (cfg.getBool("verify", false)) {
        std::printf("\nverify: re-running serially...\n");
        ExperimentConfig serial = ec;
        serial.workers = 1;
        serial.progress = false;
        serial.jsonlPath.clear();
        ExperimentRunner ref(serial);
        auto ref_cells = ref.runMatrix();
        // The reference always runs the full matrix; index by each
        // cell's canonical slot so shard=/cache= runs verify too.
        std::size_t mismatches = 0;
        for (std::size_t i = 0; i < cells.size(); ++i)
            if (cells[i].index >= ref_cells.size() ||
                !sameRunResult(cells[i].result,
                               ref_cells[cells[i].index].result))
                ++mismatches;
        std::printf("verify: %zu/%zu cells bit-identical to serial\n",
                    cells.size() - mismatches, cells.size());
        // Permanent cell failures still fail the run: a clean verify
        // of the cells that *did* finish must not mask them.
        return (failed || mismatches) ? 1 : 0;
    }
    return failed ? 1 : 0;
}
