/**
 * @file
 * Design-space exploration: run the EquiNox design flow with each
 * search algorithm (MCTS, greedy, random, simulated annealing,
 * genetic), print the resulting EIR maps side by side with their
 * physical-viability reports, and sweep mesh sizes.
 *
 * Usage: design_explorer [seed=1] [size=8] [iters=600]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/design_flow.hh"
#include "schemes/scheme_registry.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg;
    std::vector<std::string> toks;
    for (int i = 1; i < argc; ++i)
        toks.emplace_back(argv[i]);
    cfg.parseArgs(toks);

    int size = static_cast<int>(cfg.getInt("size", 8));
    std::uint64_t seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));

    // Everything registered with the SchemeRegistry, including
    // variants that exist only as registry entries (no legacy enum).
    std::printf("=== registered schemes ===\n");
    std::printf("%-18s %-6s %-10s %s\n", "name", "nets",
                "reply-net", "summary");
    for (const SchemeModel *m : SchemeRegistry::instance().models())
        std::printf("%-18s %-6s %-10s %s\n", m->name(),
                    m->singleNetwork() ? "single" : "split",
                    m->singleNetwork() ? "-" : m->replyNetName(),
                    m->summary());

    std::printf("\n=== search methods on a %dx%d mesh ===\n", size, size);
    for (SearchMethod m :
         {SearchMethod::Mcts, SearchMethod::Greedy, SearchMethod::Random,
          SearchMethod::Anneal, SearchMethod::Genetic}) {
        DesignParams dp;
        dp.width = dp.height = size;
        dp.seed = seed;
        dp.method = m;
        dp.mcts.iterationsPerLevel =
            static_cast<int>(cfg.getInt("iters", 600));
        EquiNoxDesign d = buildEquiNoxDesign(dp);
        std::printf("\n--- %s ---\n%s", searchMethodName(m),
                    d.ascii().c_str());
        std::printf("score=%.3f eirs=%d crossings=%d layers=%d "
                    "len=%.0f hops(max)=%d repeaters=%s evals=%llu\n",
                    d.eval.score, d.numEirs(), d.rdl.crossings,
                    d.rdl.layersNeeded, d.rdl.totalLengthHops,
                    d.rdl.maxHops, d.rdl.needsRepeaters ? "yes" : "no",
                    static_cast<unsigned long long>(d.evaluations));
    }

    std::printf("\n=== MCTS across mesh sizes ===\n");
    for (int n : {8, 12, 16}) {
        DesignParams dp;
        dp.width = dp.height = n;
        dp.seed = seed;
        dp.mcts.iterationsPerLevel = 300;
        EquiNoxDesign d = buildEquiNoxDesign(dp);
        std::printf("%2dx%-2d: eirs=%d crossings=%d score=%.3f "
                    "placementPenalty=%d\n",
                    n, n, d.numEirs(), d.rdl.crossings, d.eval.score,
                    d.placementPenalty);
    }
    return 0;
}
