/**
 * @file
 * sweepd: the long-lived sweep query daemon (DESIGN.md §13). Binds a
 * Unix-domain socket, answers cell queries from the content-addressed
 * cache and simulates only the deltas on the JobPool. Pair it with
 * `sweepq` (or any newline-delimited-JSON client).
 *
 * Usage (key=value args):
 *   sweepd socket=/tmp/eqx-sweepd.sock cache=cache-dir
 *          [seed=1] [scale=0.2] [workers=0] [width=8] [height=8]
 *          [warmup=0] [metrics=0]
 *
 * The geometry/seed/scale arguments fix the experiment template for
 * the daemon's lifetime; queries select schemes and benchmarks (and
 * may override the seed) inside it. SIGINT/SIGTERM (or a client
 * {"cmd":"shutdown"}) drain the in-flight query, then exit.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/config.hh"
#include "sim/experiment.hh"
#include "sweep/sweepd.hh"

using namespace eqx;

namespace {

std::atomic<bool> g_interrupted{false};

void
onSignal(int)
{
    g_interrupted.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    std::vector<std::string> toks;
    for (int i = 1; i < argc; ++i)
        toks.emplace_back(argv[i]);
    cfg.parseArgs(toks);

    SweepdConfig sd;
    sd.socketPath = cfg.getString("socket", "/tmp/eqx-sweepd.sock");
    sd.cacheDir = cfg.getString("cache", "");
    if (sd.cacheDir.empty()) {
        std::fprintf(stderr, "sweepd: cache=<dir> is required\n");
        return 1;
    }

    ExperimentConfig &ec = sd.experiment;
    ec.width = static_cast<int>(cfg.getInt("width", 8));
    ec.height = static_cast<int>(cfg.getInt("height", 8));
    ec.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    ec.instScale = cfg.getDouble("scale", 0.2);
    ec.workers = static_cast<int>(cfg.getInt("workers", 0));
    ec.warmupCycles = static_cast<Cycle>(cfg.getInt("warmup", 0));
    ec.collectMetrics = cfg.getBool("metrics", false);

    SweepdServer server(std::move(sd));
    if (!server.start())
        return 1;

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (server.running()) {
        if (g_interrupted.load())
            server.requestStop();
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.stop();
    std::printf("sweepd: drained, served %llu cells over %llu queries "
                "(%llu from cache, %llu simulated)\n",
                static_cast<unsigned long long>(server.cellsServed()),
                static_cast<unsigned long long>(server.queries()),
                static_cast<unsigned long long>(server.cacheServed()),
                static_cast<unsigned long long>(server.simulated()));
    return 0;
}
