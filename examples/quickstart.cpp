/**
 * @file
 * Quickstart: build an EquiNox design for an 8x8 interposer-based
 * throughput processor, inspect it, and run one benchmark on the full
 * system — the ~40 lines a new user needs to see.
 *
 * Usage: quickstart [seed=1] [benchmark=kmeans]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/design_flow.hh"
#include "sim/system.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg;
    std::vector<std::string> toks;
    for (int i = 1; i < argc; ++i)
        toks.emplace_back(argv[i]);
    cfg.parseArgs(toks);

    // 1. Run the EquiNox design flow: N-Queen CB placement scored by
    //    the hot-zone penalty, then MCTS selection of the Equivalent
    //    Injection Routers and their interposer links.
    DesignParams dp;
    dp.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    EquiNoxDesign design = buildEquiNoxDesign(dp);

    std::printf("EquiNox design for %dx%d, %zu cache banks:\n%s\n",
                design.width, design.height, design.cbs.size(),
                design.ascii().c_str());
    std::printf("EIRs: %d, RDL crossings: %d, metal layers: %d, "
                "ubumps: %d (%.2f mm^2)\n\n",
                design.numEirs(), design.rdl.crossings,
                design.rdl.layersNeeded, design.rdl.numUbumps,
                design.rdl.ubumpAreaMm2);

    // 2. Deploy it on the full system (PEs + L1s + NoC + L2 banks +
    //    HBM stacks) and run one benchmark.
    WorkloadProfile wp =
        workloadByName(cfg.getString("benchmark", "kmeans"));
    wp.instsPerPe /= 4; // quick demo run

    SystemConfig sc;
    sc.scheme = Scheme::EquiNox;
    sc.preDesign = &design;
    System system(sc, wp);
    RunResult r = system.run();

    std::printf("ran %s: %llu instructions in %llu cycles "
                "(IPC %.2f, %.1f us)\n",
                wp.name.c_str(),
                static_cast<unsigned long long>(r.totalInsts),
                static_cast<unsigned long long>(r.cycles), r.ipc,
                r.execNs / 1000.0);
    std::printf("NoC energy %.1f nJ, EDP %.3g pJ*ns, area %.2f mm^2\n",
                r.energyPj / 1000.0, r.edp, r.areaMm2);
    std::printf("avg packet latency: request %.1f ns, reply %.1f ns\n",
                r.reqQueueNs + r.reqNetNs, r.repQueueNs + r.repNetNs);

    // 3. Compare against the conventional separate-network baseline.
    SystemConfig base = sc;
    base.scheme = Scheme::SeparateBase;
    base.preDesign = nullptr;
    System baseline(base, wp);
    RunResult rb = baseline.run();
    std::printf("\nSeparateBase takes %.2fx as long; EquiNox saves "
                "%.1f%% execution time.\n",
                rb.execNs / r.execNs,
                100.0 * (1.0 - r.execNs / rb.execNs));
    return 0;
}
